"""Tests of the checkpoint file format, manager, and loud failure modes."""

import json
import os

import numpy as np
import pytest

from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointManager,
    fingerprint_of,
    latest_checkpoint,
    load_checkpoint,
    resolve_checkpoint,
    restore_rng,
    rng_state_json,
    save_checkpoint,
)


class TestRoundTrip:
    def test_meta_and_arrays_round_trip_exactly(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        rng = np.random.default_rng(0)
        arrays = {"alpha": rng.normal(size=(4, 7)),
                  "counts": np.arange(5, dtype=np.int64)}
        meta = {"kind": "lightnas", "next_epoch": 3, "rng_state": "{}"}
        save_checkpoint(path, meta, arrays)
        loaded_meta, loaded = load_checkpoint(path)
        assert loaded_meta["kind"] == "lightnas"
        assert loaded_meta["next_epoch"] == 3
        assert loaded_meta["version"] == CHECKPOINT_VERSION
        np.testing.assert_array_equal(loaded["alpha"], arrays["alpha"])
        np.testing.assert_array_equal(loaded["counts"], arrays["counts"])
        assert loaded["alpha"].dtype == np.float64

    def test_rng_state_round_trips_bit_for_bit(self):
        rng = np.random.default_rng(123)
        rng.normal(size=100)  # advance
        state = rng_state_json(rng)
        expected = rng.normal(size=10)
        fresh = np.random.default_rng(0)
        restore_rng(fresh, state)
        np.testing.assert_array_equal(fresh.normal(size=10), expected)

    def test_reserved_meta_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(str(tmp_path / "x.npz"), {},
                            {"__meta__": np.zeros(1)})

    def test_no_temp_files_left_behind(self, tmp_path):
        save_checkpoint(str(tmp_path / "a.npz"), {"kind": "t"},
                        {"x": np.zeros(3)})
        assert sorted(os.listdir(tmp_path)) == ["a.npz"]


class TestLoudFailures:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(str(tmp_path / "nope.npz"))

    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, {"kind": "t"}, {"x": np.arange(100.0)})
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(path)

    def test_garbage_file(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        with open(path, "wb") as handle:
            handle.write(b"not an npz at all")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_missing_meta_record(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        np.savez(open(path, "wb"), x=np.zeros(3))
        with pytest.raises(CheckpointError, match="__meta__"):
            load_checkpoint(path)

    def test_wrong_version(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        payload = {"__meta__": np.array(json.dumps({"version": 999}))}
        np.savez(open(path, "wb"), **payload)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(path)

    def test_resolve_empty_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint files"):
            resolve_checkpoint(str(tmp_path))


class TestManager:
    def test_due_schedule(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), every=3)
        assert [manager.due(e) for e in range(6)] == [
            False, False, True, False, False, True]

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), every=0)

    def test_latest_picks_highest_epoch(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), every=1)
        for epoch in (0, 4, 11):
            manager.save(epoch, {"kind": "t"}, {"x": np.array([epoch])})
        latest = manager.latest()
        assert latest.endswith("ckpt_epoch00011.npz")
        assert resolve_checkpoint(str(tmp_path)) == latest
        meta, arrays = load_checkpoint(latest)
        assert arrays["x"][0] == 11

    def test_latest_none_when_empty(self, tmp_path):
        assert latest_checkpoint(str(tmp_path)) is None
        assert latest_checkpoint(str(tmp_path / "missing")) is None


class TestFingerprint:
    def test_stable_and_sensitive(self):
        a = fingerprint_of("lightnas", 24.0, "latency_ms", 90)
        assert a == fingerprint_of("lightnas", 24.0, "latency_ms", 90)
        assert a != fingerprint_of("lightnas", 25.0, "latency_ms", 90)
        assert len(a) == 12
