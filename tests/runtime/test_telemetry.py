"""Tests of the JSON-lines run journal, phase timers, and summariser."""

import json

import pytest

from repro.runtime.telemetry import (
    NullJournal,
    PhaseTimers,
    RunJournal,
    read_journal,
    summarize_runs,
)


class TestRunJournal:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.run_header(engine="lightnas", target=24.0, seed=0)
            journal.epoch(epoch=0, predicted_metric=25.0, valid_loss=1.5)
            journal.run_end(final_predicted_metric=24.1)
        lines = open(path).read().splitlines()
        assert len(lines) == 3
        events = [json.loads(line) for line in lines]
        assert [e["event"] for e in events] == ["run_header", "epoch", "run_end"]
        assert events[0]["engine"] == "lightnas"
        assert events[0]["numpy"]  # versions recorded
        assert all("elapsed_s" in e for e in events)

    def test_flushed_per_event(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal(path)
        journal.event("epoch", epoch=0)
        # readable before close — a crashed run leaves a usable journal
        assert json.loads(open(path).read())["epoch"] == 0
        journal.close()

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "runs" / "deep" / "run.jsonl")
        with RunJournal(path) as journal:
            journal.event("run_header", engine="x")
        assert len(read_journal(path)) == 1

    def test_append_mode(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal(path) as journal:
            journal.event("run_header", engine="a")
        with RunJournal(path, append=True) as journal:
            journal.event("run_header", engine="b")
        assert len(read_journal(path)) == 2

    def test_read_journal_loud_on_malformed_line(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"event": "epoch"}\nnot json\n')
        with pytest.raises(ValueError, match="malformed journal line"):
            read_journal(path)


class TestNullJournal:
    def test_all_events_are_noops(self):
        journal = NullJournal()
        assert not journal.enabled
        journal.run_header(engine="x", anything=1)
        journal.epoch(epoch=0)
        journal.event("checkpoint", path="p")
        journal.run_end()
        journal.close()
        assert journal.path is None


class TestPhaseTimers:
    def test_aggregates_per_phase(self):
        timers = PhaseTimers()
        for _ in range(3):
            with timers.phase("train"):
                pass
        with timers.phase("eval"):
            pass
        report = timers.as_dict()
        assert report["train"]["calls"] == 3
        assert report["eval"]["calls"] == 1
        assert report["train"]["total_s"] >= 0.0
        assert timers.total("missing") == 0.0

    def test_records_time_even_on_exception(self):
        timers = PhaseTimers()
        with pytest.raises(RuntimeError):
            with timers.phase("boom"):
                raise RuntimeError
        assert timers.as_dict()["boom"]["calls"] == 1


class TestSummarizeRuns:
    def _events(self):
        return [
            {"event": "run_header", "engine": "lightnas", "target": 24.0,
             "metric_name": "latency_ms", "seed": 0, "start_epoch": 0},
            {"event": "epoch", "epoch": 0, "predicted_metric": 30.0,
             "lambda": 0.1, "valid_loss": 2.0, "architecture": [1, 2]},
            {"event": "checkpoint", "epoch": 0, "path": "p"},
            {"event": "epoch", "epoch": 1, "predicted_metric": 24.5,
             "lambda": 0.2, "valid_loss": 1.5, "architecture": [1, 3]},
            {"event": "run_end", "final_predicted_metric": 24.5,
             "wall_time_s": 1.25, "phase_timers": {"update_alpha":
                                                   {"total_s": 1.0, "calls": 2}}},
        ]

    def test_single_run_digest(self):
        runs = summarize_runs(self._events())
        assert len(runs) == 1
        run = runs[0]
        assert run["engine"] == "lightnas"
        assert run["epochs_recorded"] == 2
        assert run["checkpoints_written"] == 1
        assert run["final_predicted_metric"] == 24.5
        assert run["final_lambda"] == 0.2
        assert run["final_valid_loss"] == 1.5
        assert run["wall_time_s"] == 1.25
        assert run["phase_timers"]["update_alpha"]["calls"] == 2

    def test_multiple_runs_split_on_headers(self):
        events = self._events() + self._events()
        runs = summarize_runs(events)
        assert len(runs) == 2
        assert all(r["epochs_recorded"] == 2 for r in runs)

    def test_events_before_first_header_ignored(self):
        events = [{"event": "epoch", "epoch": 0}] + self._events()
        assert summarize_runs(events)[0]["epochs_recorded"] == 2

    def test_empty(self):
        assert summarize_runs([]) == []
