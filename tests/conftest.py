"""Shared fixtures for the test suite.

Expensive substrates (fitted predictors, the full-space latency model) are
session-scoped; tests that need a *search* use the tiny macro configuration
so the whole suite stays fast on one CPU core.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.energy import EnergyModel
from repro.hardware.latency import LatencyModel
from repro.predictor.dataset import collect_latency_dataset
from repro.predictor.mlp import MLPPredictor
from repro.proxy.accuracy_model import AccuracyOracle
from repro.proxy.dataset import SyntheticTask
from repro.search_space.macro import MacroConfig
from repro.search_space.space import SearchSpace


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_space():
    return SearchSpace(MacroConfig.tiny())


@pytest.fixture(scope="session")
def full_space():
    return SearchSpace()


@pytest.fixture(scope="session")
def tiny_latency_model(tiny_space):
    return LatencyModel(tiny_space)


@pytest.fixture(scope="session")
def full_latency_model(full_space):
    return LatencyModel(full_space)


@pytest.fixture(scope="session")
def full_energy_model(full_space, full_latency_model):
    return EnergyModel(full_space, latency_model=full_latency_model)


@pytest.fixture(scope="session")
def tiny_energy_model(tiny_space, tiny_latency_model):
    return EnergyModel(tiny_space, latency_model=tiny_latency_model)


@pytest.fixture(scope="session")
def tiny_oracle(tiny_space):
    return AccuracyOracle(tiny_space)


@pytest.fixture(scope="session")
def full_oracle(full_space):
    return AccuracyOracle(full_space)


@pytest.fixture(scope="session")
def tiny_predictor(tiny_space, tiny_latency_model):
    """A quickly-fitted latency predictor on the tiny space."""
    rng = np.random.default_rng(11)
    data = collect_latency_dataset(tiny_latency_model, 600, rng)
    train, valid = data.split(0.8, rng)
    predictor = MLPPredictor(tiny_space, hidden=(64, 32), seed=0)
    predictor.fit(train, epochs=120, batch_size=128, lr=3e-3, weight_decay=0.0)
    return predictor


@pytest.fixture(scope="session")
def full_predictor(full_space, full_latency_model):
    """A search-grade (not campaign-grade) full-space latency predictor."""
    rng = np.random.default_rng(12)
    data = collect_latency_dataset(full_latency_model, 2500, rng)
    train, valid = data.split(0.8, rng)
    predictor = MLPPredictor(full_space, seed=0)
    predictor.fit(train, epochs=150, batch_size=256, lr=3e-3, weight_decay=0.0)
    return predictor


@pytest.fixture(scope="session")
def tiny_task(tiny_space):
    macro = tiny_space.macro
    return SyntheticTask(
        num_classes=macro.num_classes,
        resolution=macro.input_resolution,
        train_size=96,
        valid_size=48,
        seed=3,
    )
