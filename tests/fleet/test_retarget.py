"""Fleet retargeting: archive sweeps, write-back, and the CLI surface."""

import json

import numpy as np
import pytest

from repro.archive.store import ArchitectureArchive
from repro.cli import main
from repro.fleet import (
    ProxyTransfer,
    device_report,
    evaluate_transfer,
    generate_fleet,
    retarget_archive,
    retarget_index,
)
from repro.predictor.analytic import AnalyticCostPredictor

#: Ten-plus devices across all four families — the ISSUE's N>=10 bar.
_FLEET_SPEC = (("phone", 3), ("mcu", 3), ("server-cpu", 3), ("edge-gpu", 3))


def _fleet():
    devices = []
    for family, count in _FLEET_SPEC:
        devices.extend(generate_fleet(family, count))
    return devices


@pytest.fixture(scope="module")
def proxy(tiny_space):
    return AnalyticCostPredictor(tiny_space, "macs_m")


@pytest.fixture(scope="module")
def transfer(tiny_space, proxy):
    return ProxyTransfer.calibrate(proxy, tiny_space, _fleet(),
                                   num_samples=64, seed=0,
                                   proxy_device="analytic-macs")


@pytest.fixture
def archive(tmp_path, tiny_space, proxy):
    rng = np.random.default_rng(21)
    path = str(tmp_path / "arc.jsonl")
    arc = ArchitectureArchive(path, space=tiny_space)
    ops = tiny_space.sample_indices(40, rng)
    arc.add_population(ops, device="xavier",
                       latency_ms=rng.uniform(1, 5, size=40),
                       macs_m=proxy.predict_population(ops),
                       score=rng.uniform(60, 76, size=40), engine="fixture")
    yield arc, path
    arc.close()


class TestDeviceReport:
    def test_constraint_satisfaction_counts(self):
        latencies = np.array([1.0, 2.0, 3.0, 4.0])
        report = device_report("d", latencies, target_ms=2.5)
        assert report["satisfied"] == 2
        assert report["satisfied_frac"] == 0.5
        assert report["latency_ms"]["median"] == 2.5

    def test_pareto_and_best_feasible(self):
        latencies = np.array([1.0, 2.0, 3.0])
        score = np.array([70.0, 75.0, 74.0])
        report = device_report("d", latencies, 2.5, score=score,
                               keys=["a", "b", "c"])
        # row 2 is dominated by row 1 (slower AND worse)
        assert report["pareto_rows"] == [0, 1]
        assert report["pareto_keys"] == ["a", "b"]
        assert report["best_feasible"]["key"] == "b"
        assert report["best_feasible"]["score"] == 75.0

    def test_nan_scores_are_excluded(self):
        report = device_report("d", np.array([1.0, 2.0]), 5.0,
                               score=np.array([np.nan, 70.0]))
        assert report["pareto_rows"] == [1]


class TestRetargetIndex:
    def test_sweeps_every_device(self, archive, transfer, proxy):
        arc, _ = archive
        index = arc.index()
        report = retarget_index(index, transfer, proxy, target_ms=50.0)
        assert report["num_devices"] == 12
        # the archive dedups by genotype, so size is <= the sampled 40
        assert report["archive_size"] == len(index)
        assert report["proxy"]["device"] == "analytic-macs"
        names = [r["device"] for r in report["devices"]]
        assert names == transfer.devices
        for entry in report["devices"]:
            assert entry["count"] == len(index)
            assert 0.0 <= entry["satisfied_frac"] <= 1.0
            assert "pareto_rows" in entry

    def test_mcu_satisfies_less_than_edge_gpu(self, archive, transfer,
                                              proxy):
        """A budget that is easy for a GPU is hard for an MCU — the sweep
        must show per-device constraint satisfaction actually differing."""
        arc, _ = archive
        report = retarget_index(arc.index(), transfer, proxy, target_ms=60.0)
        frac = {r["device"]: r["satisfied_frac"]
                for r in report["devices"]}
        assert max(frac[f"mcu-{i:02d}"] for i in range(3)) <= \
            min(frac[f"edge-gpu-{i:02d}"] for i in range(3))

    def test_device_subset_and_errors(self, archive, transfer, proxy):
        arc, _ = archive
        report = retarget_index(arc.index(), transfer, proxy, 50.0,
                                devices=["phone-01"])
        assert report["num_devices"] == 1
        with pytest.raises(ValueError, match="no devices"):
            retarget_index(arc.index(), transfer, proxy, 50.0, devices=[])
        with pytest.raises(ValueError, match="calibrated"):
            retarget_index(arc.index(), transfer, proxy, 50.0,
                           devices=["gpuzilla"])


class TestWriteBack:
    def test_written_devices_serve_queries(self, archive, transfer, proxy,
                                           capsys):
        """After write-back, fleet devices are first-class archive citizens:
        ``repro query --device phone-01 --pareto`` answers from disk."""
        arc, path = archive
        report = retarget_archive(arc, transfer, proxy, target_ms=50.0,
                                  write_back=True)
        assert report["written_devices"] == transfer.devices
        assert "latency_ms_by_device" not in report
        index = arc.index()
        assert "phone-01" in index.devices
        assert np.isfinite(
            index.device_column("phone-01", "latency_ms")).all()

        assert main(["query", "--archive", path, "--device", "phone-01",
                     "--pareto"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["count"] > 0
        costs = [e["devices"]["phone-01"]["latency_ms"]
                 for e in body["results"]]
        assert costs == sorted(costs)

    def test_without_write_back_archive_is_untouched(self, archive,
                                                     transfer, proxy):
        arc, _ = archive
        before = len(arc)
        report = retarget_archive(arc, transfer, proxy, target_ms=50.0)
        assert "written_devices" not in report
        assert len(arc) == before
        assert "phone-01" not in arc.index().devices


class TestEvaluateTransfer:
    def test_reports_accuracy_per_device(self, tiny_space, proxy, transfer):
        fleet = _fleet()[:4]
        rows = evaluate_transfer(transfer, proxy, tiny_space, fleet,
                                 num_eval=80)
        assert [r["device"] for r in rows] == [d.name for d in fleet]
        for row in rows:
            assert row["rmse_ms"] >= 0
            assert -1.0 <= row["kendall_tau"] <= 1.0
            # strict monotonicity: the map preserves the proxy's ranking
            assert row["kendall_tau"] == pytest.approx(
                row["proxy_kendall_tau"], abs=1e-12)
            assert row["truth_span_ms"][0] < row["truth_span_ms"][1]


class TestFleetCLI:
    def test_fleet_list(self, capsys):
        assert main(["fleet", "list"]) == 0
        out = capsys.readouterr().out
        for family in ("phone", "mcu", "server-cpu", "edge-gpu"):
            assert family in out

    def test_fleet_list_members_json(self, capsys):
        assert main(["fleet", "list", "--family", "phone", "--count", "2",
                     "--json"]) == 0
        members = json.loads(capsys.readouterr().out)
        assert [m["name"] for m in members] == ["phone-00", "phone-01"]
        assert members[0]["peak_macs_per_ms"] > 0

    def test_fleet_list_unknown_family_errors(self, capsys):
        with pytest.raises(SystemExit, match="unknown fleet family"):
            main(["fleet", "list", "--family", "toaster"])

    def test_fleet_retarget_cli(self, archive, tmp_path, monkeypatch,
                                capsys):
        """End-to-end: calibrate on the tiny space, sweep the archive
        against the default 12-device fleet, write the report JSON."""
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        _, path = archive
        out_path = str(tmp_path / "report.json")
        assert main(["fleet", "retarget", "--tiny", "--archive", path,
                     "--target", "50", "--calibration", "40",
                     "--output", out_path]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["num_devices"] == 12
        with open(out_path) as handle:
            assert json.load(handle) == body

    def test_fleet_search_cli(self, tmp_path, monkeypatch, capsys):
        """One constrained search for a fleet device: the budget is
        inverted through the transfer map and the proxy search runs."""
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        assert main(["fleet", "search", "--tiny", "--device", "phone-01",
                     "--target", "30", "--epochs", "3",
                     "--calibration", "40"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["device"] == "phone-01"
        assert body["target_ms"] == 30.0
        assert body["proxy_target_ms"] > 0
        assert body["calibration_size"] == 40
        assert body["true_device_latency_ms"] > 0
        assert isinstance(body["satisfied"], bool)

    def test_fleet_retarget_bad_fleet_spec(self, archive):
        _, path = archive
        with pytest.raises(SystemExit, match="FAMILY=COUNT"):
            main(["fleet", "retarget", "--tiny", "--archive", path,
                  "--target", "50", "--fleet", "phone"])

    def test_fleet_retarget_unknown_device(self, archive):
        _, path = archive
        with pytest.raises(SystemExit, match="unknown device"):
            main(["fleet", "retarget", "--tiny", "--archive", path,
                  "--target", "50", "--devices", "gpuzilla"])
