"""Property-based guarantees of the monotone transfer maps (Hypothesis).

The transfer subsystem's contract is structural, not numeric: whatever the
calibration data, the fitted map must be strictly increasing, batch and
scalar paths must agree bit-for-bit, serialization must be lossless, and —
the property the whole design rests on — applying the map can never make
the proxy's ranking of architectures *worse*.
"""

import json

import numpy as np
from hypothesis import assume, example, given, settings, strategies as st

from repro.fleet import MonotoneMap
from repro.predictor.metrics import kendall_tau

# Calibration-like pairs: bounded floats, with enough spread that float64
# interpolation noise cannot flip a comparison (latencies in ms never
# differ by 1e-9 relatively in practice).
_VALUES = st.floats(min_value=0.1, max_value=1e4, allow_nan=False,
                    allow_infinity=False)


def _pairs(draw, min_size=2, max_size=60):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    x = draw(st.lists(_VALUES, min_size=n, max_size=n))
    y = draw(st.lists(_VALUES, min_size=n, max_size=n))
    return np.asarray(x), np.asarray(y)


def _same_tau(a: float, b: float) -> bool:
    """τ equality where NaN (degenerate all-tied inputs) matches NaN."""
    return (np.isnan(a) and np.isnan(b)) or a == b


def _distinct(values, gap=0.01):
    """Sorted probe values separated by at least ``gap`` ms.

    The strictness slope is tiny by design (invisible in any latency
    estimate), so probes one ulp apart can collapse in float64 — the
    guarantee is that *distinguishable* latencies stay distinguishable,
    which 0.01 ms comfortably is at the 0.1–10⁴ ms scale under test.
    Preserves input order (rank tests need non-sorted probes)."""
    keep = []
    for value in np.asarray(values, dtype=np.float64):
        if all(abs(value - kept) >= gap for kept in keep):
            keep.append(value)
    return np.asarray(keep)


calibrations = st.builds(
    lambda x, y: (np.asarray(x[:min(len(x), len(y))]),
                  np.asarray(y[:min(len(x), len(y))])),
    st.lists(_VALUES, min_size=2, max_size=60),
    st.lists(_VALUES, min_size=2, max_size=60),
)


@settings(max_examples=150, deadline=None)
@given(calibrations, st.lists(_VALUES, min_size=2, max_size=40))
def test_map_is_strictly_increasing_everywhere(calibration, probe):
    x, y = calibration
    fitted = MonotoneMap.fit(x, y)
    probe = np.sort(_distinct(probe))
    assume(len(probe) >= 2)
    out = fitted.transfer_many(probe)
    assert (np.diff(out) > 0).all()


@settings(max_examples=150, deadline=None)
@given(calibrations, st.lists(_VALUES, min_size=1, max_size=30))
def test_transfer_many_bit_identical_to_scalar(calibration, probe):
    x, y = calibration
    fitted = MonotoneMap.fit(x, y)
    probe = np.asarray(probe)
    batch = fitted.transfer_many(probe)
    scalars = np.asarray([fitted.transfer(float(v)) for v in probe])
    assert np.array_equal(batch, scalars)


@settings(max_examples=100, deadline=None)
@given(calibrations)
@example(calibration=(np.array([1.0, np.nextafter(1e4, 0.0), 1e4]),
                      np.array([1.0, 2.0, 1.0])))
def test_rank_correlation_never_degraded_on_calibration_set(calibration):
    """Kendall-τ of (map(proxy), target) equals τ of (proxy, target) on the
    calibration pairs themselves: strict monotonicity preserves every
    pairwise comparison, so the map cannot lose ranking information.

    τ compares the *tie structure* of x, so the comparison only holds for
    distinguishable proxy values: two latencies one ulp apart (see the
    pinned example — discordant before, collapsed to a tie by the map)
    are below the strictness slope's float64 resolution, and the contract
    (module docstring) deliberately excludes them.  Pairs whose x collides
    with an earlier one are dropped, exactly like ``_distinct`` does for
    probe points."""
    x, y = calibration
    keep = []
    for i, value in enumerate(x):
        if all(abs(value - x[j]) >= 0.01 for j in keep):
            keep.append(i)
    x, y = x[keep], y[keep]
    assume(len(x) >= 2)
    fitted = MonotoneMap.fit(x, y)
    before = kendall_tau(x, y)
    after = kendall_tau(fitted.transfer_many(x), y)
    assert _same_tau(after, before)


@settings(max_examples=100, deadline=None)
@given(calibrations, st.lists(_VALUES, min_size=2, max_size=30))
def test_rank_correlation_preserved_on_fresh_data(calibration, probe):
    """The same rank guarantee holds for data the fit never saw — the map
    is strictly increasing on all of ℝ, not just between its knots."""
    x, y = calibration
    fitted = MonotoneMap.fit(x, y)
    probe = _distinct(probe)
    assume(len(probe) >= 2)
    reference = np.arange(len(probe), dtype=np.float64)
    assert _same_tau(kendall_tau(fitted.transfer_many(probe), reference),
                     kendall_tau(probe, reference))


@settings(max_examples=100, deadline=None)
@given(calibrations, st.lists(_VALUES, min_size=1, max_size=20))
def test_json_round_trip_bit_identical(calibration, probe):
    """Serialization through real JSON text preserves behaviour exactly
    (doubles survive via shortest-repr encoding)."""
    x, y = calibration
    fitted = MonotoneMap.fit(x, y)
    restored = MonotoneMap.from_payload(
        json.loads(json.dumps(fitted.to_payload())))
    probe = np.asarray(probe)
    assert np.array_equal(restored.transfer_many(probe),
                          fitted.transfer_many(probe))


@settings(max_examples=100, deadline=None)
@given(calibrations)
def test_fit_interpolates_isotonic_means_at_knots(calibration):
    """At its own knots the map returns the isotonic fit (plus the
    vanishing strictness term): predictions stay inside the calibration
    target range, never wild extrapolations."""
    x, y = calibration
    fitted = MonotoneMap.fit(x, y)
    at_knots = fitted.transfer_many(fitted.x_knots)
    slack = 1e-6 * (abs(y).max() + 1.0)
    assert (at_knots >= y.min() - slack).all()
    assert (at_knots <= y.max() + slack).all()
