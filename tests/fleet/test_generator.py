"""Parametric device families: reproducibility and name resolution."""

import numpy as np
import pytest

from repro.fleet import (
    DEFAULT_FLEET_SEED,
    FLEET_FAMILIES,
    FamilySpec,
    fleet_device,
    fleet_name,
    generate_device,
    generate_fleet,
    parse_fleet_name,
    register_family,
)
from repro.fleet.generator import PROXY
from repro.hardware.device import resolve_device
from repro.hardware.latency import LatencyModel


class TestGeneration:
    def test_members_are_reproducible(self):
        a = generate_device("phone", 3)
        b = generate_device("phone", 3)
        assert a == b

    def test_member_independent_of_fleet_size_and_order(self):
        """phone-03 denotes the same device however it is instantiated."""
        alone = generate_device("phone", 3)
        in_small = generate_fleet("phone", 4)[3]
        in_large = generate_fleet("phone", 12)[3]
        assert alone == in_small == in_large

    def test_seed_changes_device_and_name(self):
        base = generate_device("mcu", 1)
        other = generate_device("mcu", 1, seed=5)
        assert base.name == "mcu-01"
        assert other.name == "mcu-01@s5"
        assert base.peak_macs_per_ms != other.peak_macs_per_ms

    def test_families_differ(self):
        phone = generate_device("phone", 0)
        mcu = generate_device("mcu", 0)
        assert phone.peak_macs_per_ms != mcu.peak_macs_per_ms

    def test_profiles_are_physical(self):
        for family in FLEET_FAMILIES:
            for device in generate_fleet(family, 6):
                assert device.peak_macs_per_ms > 0
                assert device.bandwidth_bytes_per_ms > 0
                assert 0 < device.depthwise_efficiency <= \
                    device.dense_efficiency
                assert device.kernel_launch_ms >= 0
                assert device.isolated_overhead_ms >= 0
                assert device.batch_size >= 1

    def test_mcu_is_decades_slower_than_edge_gpu(self):
        """Families span the decades they advertise (speed is per-inference,
        so compare throughput normalised by batch size)."""
        mcu = generate_device("mcu", 0)
        gpu = generate_device("edge-gpu", 0)
        assert (gpu.peak_macs_per_ms / gpu.batch_size) > \
            20 * (mcu.peak_macs_per_ms / mcu.batch_size)

    def test_generated_profiles_run_the_latency_model(self, tiny_space):
        device = generate_device("server-cpu", 2)
        model = LatencyModel(tiny_space, device)
        ops = tiny_space.sample_indices(4, np.random.default_rng(0))
        latencies = model.latency_many(ops)
        assert np.isfinite(latencies).all() and (latencies > 0).all()

    def test_unknown_family_is_an_error(self):
        with pytest.raises(ValueError, match="unknown fleet family"):
            generate_device("toaster", 0)
        with pytest.raises(ValueError, match="positive"):
            generate_fleet("phone", 0)
        with pytest.raises(ValueError, match="non-negative"):
            generate_device("phone", -1)


class TestNames:
    def test_fleet_name_round_trip(self):
        assert parse_fleet_name(fleet_name("phone", 3)) == \
            ("phone", 3, DEFAULT_FLEET_SEED)
        assert parse_fleet_name(fleet_name("server-cpu", 11, seed=9)) == \
            ("server-cpu", 11, 9)

    def test_non_fleet_names_parse_to_none(self):
        for name in ("xavier", "edge-nano", "phone", "phone-", "phone-x",
                     "toaster-03", "phone-03@", "phone-03@s"):
            assert parse_fleet_name(name) is None
            assert fleet_device(name) is None

    def test_resolve_device_accepts_fleet_names(self):
        device = resolve_device("edge-gpu-04")
        assert device == generate_device("edge-gpu", 4)
        seeded = resolve_device("edge-gpu-04@s2")
        assert seeded == generate_device("edge-gpu", 4, seed=2)
        assert seeded != device

    def test_resolve_device_error_mentions_fleet_patterns(self):
        with pytest.raises(ValueError) as info:
            resolve_device("gpuzilla")
        message = str(info.value)
        assert "phone-<NN>" in message
        # static names are listed exactly once (alias == profile name)
        assert message.count("edge-nano") == 1


class TestFamilySpec:
    def test_range_validation(self):
        with pytest.raises(ValueError, match="lo > 0"):
            FamilySpec(name="bad", description="", batch_size=1,
                       speed=(0.0, 1.0))
        with pytest.raises(ValueError, match="bad range"):
            FamilySpec(name="bad", description="", batch_size=1,
                       speed=(2.0, 1.0))
        with pytest.raises(ValueError, match="batch_size"):
            FamilySpec(name="bad", description="", batch_size=0,
                       speed=(1.0, 2.0))

    def test_register_family(self):
        spec = FamilySpec(name="tpu-pod", description="test-only",
                          batch_size=4, speed=(0.1, 0.2))
        register_family(spec)
        try:
            device = resolve_device("tpu-pod-00")
            assert device.batch_size == 4
            # speed < 1 means faster than the proxy (per inference)
            assert device.peak_macs_per_ms / device.batch_size > \
                PROXY.peak_macs_per_ms / PROXY.batch_size
            with pytest.raises(ValueError, match="already registered"):
                register_family(spec)
        finally:
            del FLEET_FAMILIES["tpu-pod"]

    def test_register_family_rejects_bad_names(self):
        with pytest.raises(ValueError, match="lowercase"):
            register_family(FamilySpec(name="Bad_Name", description="",
                                       batch_size=1, speed=(1.0, 2.0)))
