"""Device-fleet subsystem tests."""
