"""Monotone proxy→target maps: fitting, inversion, serialization."""

import json

import numpy as np
import pytest

from repro.fleet import (
    MonotoneMap,
    ProxyTransfer,
    generate_fleet,
    isotonic_fit,
)
from repro.hardware.latency import LatencyModel
from repro.predictor.analytic import AnalyticCostPredictor


class TestIsotonicFit:
    def test_already_monotone_is_untouched(self):
        y = np.array([1.0, 2.0, 4.0, 8.0])
        fitted = isotonic_fit(np.arange(4.0), y, np.ones(4))
        assert np.array_equal(fitted, y)

    def test_violations_pool_to_weighted_mean(self):
        fitted = isotonic_fit(np.arange(3.0),
                              np.array([3.0, 1.0, 2.0]), np.ones(3))
        assert np.allclose(fitted, [2.0, 2.0, 2.0])

    def test_weights_shift_the_pool(self):
        fitted = isotonic_fit(np.arange(2.0), np.array([4.0, 0.0]),
                              np.array([3.0, 1.0]))
        assert np.allclose(fitted, [3.0, 3.0])

    def test_result_is_non_decreasing(self, rng):
        y = rng.normal(size=50)
        fitted = isotonic_fit(np.arange(50.0), y, np.ones(50))
        assert (np.diff(fitted) >= 0).all()
        # isotonic regression preserves the weighted mean
        assert np.isclose(fitted.mean(), y.mean())


class TestMonotoneMap:
    def test_fit_recovers_monotone_relation(self, rng):
        x = rng.uniform(10, 30, size=200)
        y = 3.0 * x + 5.0 + rng.normal(0, 0.3, size=200)
        fitted = MonotoneMap.fit(x, y)
        probe = np.linspace(12, 28, 64)
        assert np.allclose(fitted.transfer_many(probe), 3 * probe + 5,
                           rtol=0.05)
        assert fitted.calibration_size == 200

    def test_map_is_strictly_increasing(self, rng):
        x = rng.uniform(0, 1, size=100)
        y = np.round(x * 4)  # plateaus galore
        fitted = MonotoneMap.fit(x, y)
        probe = np.sort(rng.uniform(-0.5, 1.5, size=300))
        out = fitted.transfer_many(probe)
        assert (np.diff(out) > 0).all()

    def test_extrapolation_uses_boundary_slopes(self):
        fitted = MonotoneMap.fit(np.array([0.0, 1.0, 2.0]),
                                 np.array([0.0, 1.0, 3.0]))
        assert fitted.transfer(-1.0) == pytest.approx(-1.0, abs=1e-6)
        assert fitted.transfer(3.0) == pytest.approx(5.0, abs=1e-6)

    def test_scalar_equals_vector_bitwise(self, rng):
        x = rng.uniform(5, 50, size=80)
        y = x ** 1.5 + rng.normal(0, 1, size=80)
        fitted = MonotoneMap.fit(x, y)
        probe = rng.uniform(0, 60, size=40)
        batch = fitted.transfer_many(probe)
        for i, value in enumerate(probe):
            assert fitted.transfer(float(value)) == batch[i]

    def test_tied_proxy_values_collapse_to_mean(self):
        fitted = MonotoneMap.fit(np.array([1.0, 1.0, 2.0]),
                                 np.array([2.0, 4.0, 5.0]))
        assert np.array_equal(fitted.x_knots, [1.0, 2.0])
        assert np.allclose(fitted.y_knots, [3.0, 5.0])

    def test_inverse_round_trips(self, rng):
        x = rng.uniform(10, 30, size=150)
        y = np.sqrt(x) * 10 + rng.normal(0, 0.2, size=150)
        fitted = MonotoneMap.fit(x, y)
        for probe in (11.0, 15.5, 29.0, 5.0, 40.0):  # inside and outside
            assert fitted.inverse(fitted.transfer(probe)) == \
                pytest.approx(probe, rel=1e-6)

    def test_payload_round_trip_is_bit_exact(self, rng):
        x = rng.uniform(0, 100, size=60)
        y = x * 2 + rng.normal(0, 5, size=60)
        fitted = MonotoneMap.fit(x, y)
        # through actual JSON text, as the archive sidecar would store it
        restored = MonotoneMap.from_payload(
            json.loads(json.dumps(fitted.to_payload())))
        assert np.array_equal(restored.x_knots, fitted.x_knots)
        assert np.array_equal(restored.y_knots, fitted.y_knots)
        assert restored.strict_slope == fitted.strict_slope
        assert restored.calibration_size == fitted.calibration_size
        probe = rng.uniform(-10, 110, size=30)
        assert np.array_equal(restored.transfer_many(probe),
                              fitted.transfer_many(probe))

    def test_fit_input_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            MonotoneMap.fit([1.0], [2.0])
        with pytest.raises(ValueError, match="aligned"):
            MonotoneMap.fit([1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="finite"):
            MonotoneMap.fit([1.0, np.nan], [1.0, 2.0])

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MonotoneMap(x_knots=np.array([1.0, 1.0]),
                        y_knots=np.array([1.0, 2.0]), strict_slope=1e-9)
        with pytest.raises(ValueError, match="non-decreasing"):
            MonotoneMap(x_knots=np.array([1.0, 2.0]),
                        y_knots=np.array([2.0, 1.0]), strict_slope=1e-9)
        with pytest.raises(ValueError, match="missing"):
            MonotoneMap.from_payload({"x_knots": [1.0, 2.0]})


class TestProxyTransfer:
    @pytest.fixture(scope="class")
    def calibrated(self, tiny_space):
        proxy = AnalyticCostPredictor(tiny_space, "macs_m")
        fleet = generate_fleet("phone", 2) + generate_fleet("mcu", 1)
        transfer = ProxyTransfer.calibrate(
            proxy, tiny_space, fleet, num_samples=60, seed=3,
            proxy_device="analytic-macs")
        return proxy, fleet, transfer

    def test_calibrate_builds_one_map_per_device(self, calibrated):
        _, fleet, transfer = calibrated
        assert transfer.devices == sorted(d.name for d in fleet)
        assert len(transfer) == 3
        assert transfer.proxy_device == "analytic-macs"
        for name in transfer.devices:
            assert transfer.map_for(name).calibration_size == 60

    def test_transfer_tracks_device_scale(self, calibrated, tiny_space):
        """Transferred values land in the target device's latency range,
        decades away from the proxy metric's range."""
        proxy, fleet, transfer = calibrated
        ops = tiny_space.sample_indices(50, np.random.default_rng(11))
        proxy_values = proxy.predict_population(ops)
        mcu = next(d for d in fleet if d.name.startswith("mcu"))
        transferred = transfer.transfer_many(mcu.name, proxy_values)
        truth = LatencyModel(tiny_space, mcu).latency_many(ops)
        assert transferred.min() > 0.5 * truth.min()
        assert transferred.max() < 2.0 * truth.max()

    def test_predict_device_composes(self, calibrated, tiny_space):
        proxy, fleet, transfer = calibrated
        ops = tiny_space.sample_indices(8, np.random.default_rng(5))
        name = fleet[0].name
        direct = transfer.transfer_many(name,
                                        proxy.predict_population(ops))
        assert np.array_equal(
            transfer.predict_device(name, proxy, ops), direct)

    def test_unknown_device_names_calibrated_ones(self, calibrated):
        _, _, transfer = calibrated
        with pytest.raises(ValueError, match="phone-00"):
            transfer.map_for("gpuzilla")

    def test_payload_round_trip(self, calibrated, tiny_space):
        proxy, _, transfer = calibrated
        restored = ProxyTransfer.from_payload(
            json.loads(json.dumps(transfer.to_payload())))
        assert restored.devices == transfer.devices
        assert restored.proxy_device == transfer.proxy_device
        assert restored.calibration_seed == transfer.calibration_seed
        ops = tiny_space.sample_indices(10, np.random.default_rng(9))
        values = proxy.predict_population(ops)
        for name in transfer.devices:
            assert np.array_equal(restored.transfer_many(name, values),
                                  transfer.transfer_many(name, values))

    def test_calibration_errors(self, tiny_space):
        proxy = AnalyticCostPredictor(tiny_space, "macs_m")
        fleet = generate_fleet("phone", 1)
        with pytest.raises(ValueError, match="at least 2"):
            ProxyTransfer.calibrate(proxy, tiny_space, fleet, num_samples=1)
        with pytest.raises(ValueError, match="duplicate"):
            ProxyTransfer.calibrate(proxy, tiny_space, fleet + fleet,
                                    num_samples=10)
        with pytest.raises(ValueError, match="'maps'"):
            ProxyTransfer.from_payload({})

    def test_calibration_stream_independent_of_fleet_growth(self, tiny_space):
        """Growing the fleet must not change the maps of devices already
        calibrated (per-device RNG streams are keyed by position)."""
        proxy = AnalyticCostPredictor(tiny_space, "macs_m")
        small = ProxyTransfer.calibrate(
            proxy, tiny_space, generate_fleet("phone", 2), num_samples=40)
        grown = ProxyTransfer.calibrate(
            proxy, tiny_space,
            generate_fleet("phone", 2) + generate_fleet("mcu", 2),
            num_samples=40)
        for name in small.devices:
            assert np.array_equal(grown.map_for(name).x_knots,
                                  small.map_for(name).x_knots)
            assert np.array_equal(grown.map_for(name).y_knots,
                                  small.map_for(name).y_knots)
