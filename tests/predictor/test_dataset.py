"""Tests of the predictor measurement-campaign datasets."""

import numpy as np
import pytest

from repro.predictor.dataset import (
    PredictorDataset,
    collect_energy_dataset,
    collect_latency_dataset,
    encode_architectures,
)
from repro.hardware.energy import EnergyModel


class TestEncode:
    def test_shape(self, tiny_space, rng):
        archs = tiny_space.sample_many(5, rng)
        feats = encode_architectures(tiny_space, archs)
        assert feats.shape == (5, tiny_space.num_layers * tiny_space.num_operators)

    def test_rows_are_flattened_one_hots(self, tiny_space, rng):
        arch = tiny_space.sample(rng)
        feats = encode_architectures(tiny_space, [arch])
        expected = arch.one_hot(tiny_space.num_operators).reshape(-1)
        assert np.array_equal(feats[0], expected)

    def test_row_sums_equal_num_layers(self, tiny_space, rng):
        feats = encode_architectures(tiny_space, tiny_space.sample_many(10, rng))
        assert np.allclose(feats.sum(axis=1), tiny_space.num_layers)


class TestCollect:
    def test_latency_campaign(self, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 50, rng)
        assert len(data) == 50
        assert (data.targets > 0).all()
        assert len(data.archs) == 50

    def test_energy_campaign(self, tiny_space, tiny_latency_model, rng):
        model = EnergyModel(tiny_space, latency_model=tiny_latency_model)
        data = collect_energy_dataset(model, 30, rng)
        assert len(data) == 30
        assert (data.targets > 0).all()

    def test_targets_near_true_latency(self, tiny_space, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 40, rng)
        true = np.array([tiny_latency_model.latency_ms(a) for a in data.archs])
        assert np.abs(data.targets - true).max() < 0.5

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            PredictorDataset(np.zeros((2, 3)), np.zeros(3), [])


class TestSplit:
    def test_sizes(self, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 100, rng)
        train, valid = data.split(0.8, rng)
        assert len(train) == 80 and len(valid) == 20

    def test_disjoint_and_complete(self, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 60, rng)
        train, valid = data.split(0.5, rng)
        train_keys = {a.op_indices for a in train.archs}
        valid_keys = {a.op_indices for a in valid.archs}
        # archs may repeat in a random campaign, so compare target multisets
        merged = sorted(list(train.targets) + list(valid.targets))
        assert merged == sorted(data.targets)

    def test_alignment_preserved(self, tiny_space, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 50, rng)
        train, _ = data.split(0.8, rng)
        for row, arch in zip(train.features, train.archs):
            expected = arch.one_hot(tiny_space.num_operators).reshape(-1)
            assert np.array_equal(row, expected)

    def test_invalid_fraction(self, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 10, rng)
        with pytest.raises(ValueError):
            data.split(0.0, rng)
        with pytest.raises(ValueError):
            data.split(1.0, rng)
