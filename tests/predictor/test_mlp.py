"""Tests of the MLP latency/energy predictor (§3.2)."""

import numpy as np
import pytest

from repro import nn
from repro.predictor.dataset import collect_latency_dataset
from repro.predictor.mlp import MLPPredictor


class TestArchitectureOfPredictor:
    def test_paper_layer_sizes(self, full_space):
        pred = MLPPredictor(full_space)
        dims = [(l.in_features, l.out_features) for l in pred.layers]
        assert dims == [(147, 128), (128, 64), (64, 1)]

    def test_input_dim_follows_space(self, tiny_space):
        pred = MLPPredictor(tiny_space)
        assert pred.input_dim == tiny_space.num_layers * tiny_space.num_operators


class TestFit:
    def test_reaches_low_rmse(self, tiny_space, tiny_latency_model, tiny_predictor):
        rng = np.random.default_rng(99)
        data = collect_latency_dataset(tiny_latency_model, 200, rng)
        rmse = tiny_predictor.rmse(data)
        # tiny-space latency spread is ~0.1 ms; predictor should be well
        # under the trivial (predict-the-mean) error
        baseline = float(data.targets.std())
        assert rmse < 0.6 * baseline

    def test_rejects_tiny_training_set(self, tiny_space, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 3, rng)
        pred = MLPPredictor(tiny_space)
        data.targets = data.targets[:1]
        data.features = data.features[:1]
        data.archs = data.archs[:1]
        with pytest.raises(ValueError):
            pred.fit(data)

    def test_training_loss_decreases(self, tiny_space, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 150, rng)
        pred = MLPPredictor(tiny_space, hidden=(32, 16), seed=1)
        log = pred.fit(data, epochs=30, batch_size=64, lr=3e-3)
        assert log.train_loss[-1] < log.train_loss[0]

    def test_fitted_flag(self, tiny_space, tiny_latency_model, rng):
        pred = MLPPredictor(tiny_space)
        assert not pred.fitted
        data = collect_latency_dataset(tiny_latency_model, 50, rng)
        pred.fit(data, epochs=2)
        assert pred.fitted

    def test_valid_log_recorded(self, tiny_space, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 80, rng)
        train, valid = data.split(0.8, rng)
        pred = MLPPredictor(tiny_space, hidden=(16, 8))
        log = pred.fit(train, valid, epochs=5)
        assert len(log.valid_rmse) == 5


class TestPredictPaths:
    def test_numpy_and_tensor_paths_agree(self, tiny_space, tiny_predictor, rng):
        archs = tiny_space.sample_many(8, rng)
        feats = np.stack(
            [a.one_hot(tiny_space.num_operators).reshape(-1) for a in archs])
        fast = tiny_predictor.predict(feats)
        taped = tiny_predictor.predict_tensor(nn.Tensor(feats)).data
        assert np.allclose(fast, taped)

    def test_predict_arch_scalar(self, tiny_space, tiny_predictor, rng):
        value = tiny_predictor.predict_arch(tiny_space.sample(rng))
        assert isinstance(value, float)
        assert value > 0

    def test_differentiable_wrt_input(self, tiny_space, tiny_predictor, rng):
        """The property Eq. (12) needs: ∂LAT/∂(input encoding) exists."""
        arch = tiny_space.sample(rng)
        feats = nn.Tensor(
            arch.one_hot(tiny_space.num_operators).reshape(1, -1),
            requires_grad=True,
        )
        out = tiny_predictor.predict_tensor(feats)
        out.sum().backward()
        assert feats.grad is not None
        assert np.abs(feats.grad).max() > 0

    def test_predict_single_row(self, tiny_space, tiny_predictor, rng):
        arch = tiny_space.sample(rng)
        feat = arch.one_hot(tiny_space.num_operators).reshape(1, -1)
        assert tiny_predictor.predict(feat).shape == (1,)


class TestStateDict:
    def test_round_trip(self, tiny_space, tiny_predictor, rng):
        state = tiny_predictor.state_dict()
        clone = MLPPredictor(tiny_space, hidden=(64, 32), seed=7)
        clone.load_state_dict(state)
        arch = tiny_space.sample(rng)
        assert np.isclose(clone.predict_arch(arch),
                          tiny_predictor.predict_arch(arch))

    def test_normalisation_restored(self, tiny_space, tiny_predictor):
        state = tiny_predictor.state_dict()
        clone = MLPPredictor(tiny_space, hidden=(64, 32))
        clone.load_state_dict(state)
        assert clone.target_mean == tiny_predictor.target_mean
        assert clone.target_std == tiny_predictor.target_std
        assert clone.fitted


class TestFastPredictPath:
    def test_fast_weights_cached_after_fit(self, tiny_predictor):
        assert tiny_predictor._fast_weights is not None
        for (w_t, _), layer in zip(tiny_predictor._fast_weights,
                                   tiny_predictor.layers):
            assert w_t.flags["C_CONTIGUOUS"]
            assert np.array_equal(w_t, layer.weight.data.T)

    def test_fast_weights_cleared_during_fit(self, tiny_space,
                                             tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 80, rng)
        predictor = MLPPredictor(tiny_space, hidden=(16,), seed=0)
        predictor.fit(data, epochs=2, batch_size=32)
        assert predictor._fast_weights is not None  # refreshed at fit end

    def test_fast_weights_refreshed_by_load(self, tiny_space, tiny_predictor):
        fresh = MLPPredictor(tiny_space, hidden=(64, 32))
        assert fresh._fast_weights is None  # unfitted: no stale cache
        fresh.load_state_dict(tiny_predictor.state_dict())
        assert fresh._fast_weights is not None
        arch = tiny_space.sample(np.random.default_rng(2))
        assert fresh.predict_arch(arch) == tiny_predictor.predict_arch(arch)

    def test_cached_and_uncached_paths_agree(self, tiny_space, tiny_predictor, rng):
        feats = tiny_space.encode_many(tiny_space.sample_indices(16, rng))
        cached = tiny_predictor.predict(feats)
        saved, tiny_predictor._fast_weights = tiny_predictor._fast_weights, None
        try:
            uncached = tiny_predictor.predict(feats)
        finally:
            tiny_predictor._fast_weights = saved
        # BLAS may pick different kernels for contiguous vs transposed
        # operands, so agreement is to rounding, not bit-for-bit.
        assert np.allclose(cached, uncached, rtol=1e-12, atol=1e-12)

    def test_one_dim_input_still_accepted(self, tiny_space, tiny_predictor, rng):
        feats = tiny_space.encode_many(tiny_space.sample_indices(1, rng))
        assert tiny_predictor.predict(feats[0]).shape == (1,)
        assert tiny_predictor.predict(feats[0])[0] == tiny_predictor.predict(feats)[0]

    def test_float32_input_still_accepted(self, tiny_space, tiny_predictor, rng):
        feats = tiny_space.encode_many(tiny_space.sample_indices(8, rng))
        out32 = tiny_predictor.predict(feats.astype(np.float32))
        assert np.allclose(out32, tiny_predictor.predict(feats))

    def test_fast_path_does_not_copy(self, tiny_space, tiny_predictor, rng):
        """2-D float64 input must be used as-is — the whole point of the
        fast path is skipping the atleast_2d + astype copy."""
        feats = tiny_space.encode_many(tiny_space.sample_indices(4, rng))
        expected = tiny_predictor.predict(feats)
        feats_view = feats  # predict must not mutate or re-wrap it
        assert np.array_equal(tiny_predictor.predict(feats_view), expected)


class TestPredictPopulation:
    def test_matches_per_arch_predictions(self, tiny_space, tiny_predictor, rng):
        ops = tiny_space.sample_indices(20, rng)
        batched = tiny_predictor.predict_population(ops)
        scalar = [tiny_predictor.predict_arch(a)
                  for a in tiny_space.indices_to_archs(ops)]
        assert np.allclose(batched, scalar, rtol=0, atol=1e-12)

    def test_chunking_is_invisible(self, tiny_space, tiny_predictor, rng):
        ops = tiny_space.sample_indices(50, rng)
        whole = tiny_predictor.predict_population(ops)
        chunked = tiny_predictor.predict_population(ops, chunk_size=7)
        # chunk height changes the BLAS kernel choice → rounding-level only
        assert np.allclose(whole, chunked, rtol=1e-12, atol=1e-12)

    def test_accepts_architecture_sequence(self, tiny_space, tiny_predictor, rng):
        archs = tiny_space.sample_many(6, rng)
        from_archs = tiny_predictor.predict_population(archs)
        from_ops = tiny_predictor.predict_population(
            tiny_space.as_index_matrix(archs))
        assert np.array_equal(from_archs, from_ops)
