"""Tests of the MLP latency/energy predictor (§3.2)."""

import numpy as np
import pytest

from repro import nn
from repro.predictor.dataset import collect_latency_dataset
from repro.predictor.mlp import MLPPredictor


class TestArchitectureOfPredictor:
    def test_paper_layer_sizes(self, full_space):
        pred = MLPPredictor(full_space)
        dims = [(l.in_features, l.out_features) for l in pred.layers]
        assert dims == [(147, 128), (128, 64), (64, 1)]

    def test_input_dim_follows_space(self, tiny_space):
        pred = MLPPredictor(tiny_space)
        assert pred.input_dim == tiny_space.num_layers * tiny_space.num_operators


class TestFit:
    def test_reaches_low_rmse(self, tiny_space, tiny_latency_model, tiny_predictor):
        rng = np.random.default_rng(99)
        data = collect_latency_dataset(tiny_latency_model, 200, rng)
        rmse = tiny_predictor.rmse(data)
        # tiny-space latency spread is ~0.1 ms; predictor should be well
        # under the trivial (predict-the-mean) error
        baseline = float(data.targets.std())
        assert rmse < 0.6 * baseline

    def test_rejects_tiny_training_set(self, tiny_space, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 3, rng)
        pred = MLPPredictor(tiny_space)
        data.targets = data.targets[:1]
        data.features = data.features[:1]
        data.archs = data.archs[:1]
        with pytest.raises(ValueError):
            pred.fit(data)

    def test_training_loss_decreases(self, tiny_space, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 150, rng)
        pred = MLPPredictor(tiny_space, hidden=(32, 16), seed=1)
        log = pred.fit(data, epochs=30, batch_size=64, lr=3e-3)
        assert log.train_loss[-1] < log.train_loss[0]

    def test_fitted_flag(self, tiny_space, tiny_latency_model, rng):
        pred = MLPPredictor(tiny_space)
        assert not pred.fitted
        data = collect_latency_dataset(tiny_latency_model, 50, rng)
        pred.fit(data, epochs=2)
        assert pred.fitted

    def test_valid_log_recorded(self, tiny_space, tiny_latency_model, rng):
        data = collect_latency_dataset(tiny_latency_model, 80, rng)
        train, valid = data.split(0.8, rng)
        pred = MLPPredictor(tiny_space, hidden=(16, 8))
        log = pred.fit(train, valid, epochs=5)
        assert len(log.valid_rmse) == 5


class TestPredictPaths:
    def test_numpy_and_tensor_paths_agree(self, tiny_space, tiny_predictor, rng):
        archs = tiny_space.sample_many(8, rng)
        feats = np.stack(
            [a.one_hot(tiny_space.num_operators).reshape(-1) for a in archs])
        fast = tiny_predictor.predict(feats)
        taped = tiny_predictor.predict_tensor(nn.Tensor(feats)).data
        assert np.allclose(fast, taped)

    def test_predict_arch_scalar(self, tiny_space, tiny_predictor, rng):
        value = tiny_predictor.predict_arch(tiny_space.sample(rng))
        assert isinstance(value, float)
        assert value > 0

    def test_differentiable_wrt_input(self, tiny_space, tiny_predictor, rng):
        """The property Eq. (12) needs: ∂LAT/∂(input encoding) exists."""
        arch = tiny_space.sample(rng)
        feats = nn.Tensor(
            arch.one_hot(tiny_space.num_operators).reshape(1, -1),
            requires_grad=True,
        )
        out = tiny_predictor.predict_tensor(feats)
        out.sum().backward()
        assert feats.grad is not None
        assert np.abs(feats.grad).max() > 0

    def test_predict_single_row(self, tiny_space, tiny_predictor, rng):
        arch = tiny_space.sample(rng)
        feat = arch.one_hot(tiny_space.num_operators).reshape(1, -1)
        assert tiny_predictor.predict(feat).shape == (1,)


class TestStateDict:
    def test_round_trip(self, tiny_space, tiny_predictor, rng):
        state = tiny_predictor.state_dict()
        clone = MLPPredictor(tiny_space, hidden=(64, 32), seed=7)
        clone.load_state_dict(state)
        arch = tiny_space.sample(rng)
        assert np.isclose(clone.predict_arch(arch),
                          tiny_predictor.predict_arch(arch))

    def test_normalisation_restored(self, tiny_space, tiny_predictor):
        state = tiny_predictor.state_dict()
        clone = MLPPredictor(tiny_space, hidden=(64, 32))
        clone.load_state_dict(state)
        assert clone.target_mean == tiny_predictor.target_mean
        assert clone.target_std == tiny_predictor.target_std
        assert clone.fitted
