"""Tests of the exact analytic cost predictors."""

import numpy as np
import pytest

from repro import nn
from repro.hardware.flops import arch_cost, count_macs, count_params
from repro.predictor.analytic import AnalyticCostPredictor
from repro.predictor.dataset import encode_architectures


class TestExactness:
    def test_macs_match_counter(self, full_space, rng):
        predictor = AnalyticCostPredictor(full_space, "macs_m")
        for _ in range(20):
            arch = full_space.sample(rng)
            assert predictor.predict_arch(arch) == pytest.approx(
                count_macs(full_space, arch) / 1e6)

    def test_params_match_counter(self, full_space, rng):
        predictor = AnalyticCostPredictor(full_space, "params_m")
        arch = full_space.sample(rng)
        assert predictor.predict_arch(arch) == pytest.approx(
            count_params(full_space, arch) / 1e6)

    def test_flops_is_twice_macs(self, full_space, rng):
        arch = full_space.sample(rng)
        macs = AnalyticCostPredictor(full_space, "macs_m").predict_arch(arch)
        flops = AnalyticCostPredictor(full_space, "flops_m").predict_arch(arch)
        assert flops == pytest.approx(2 * macs)

    def test_batch_predict_matches_scalar(self, full_space, rng):
        predictor = AnalyticCostPredictor(full_space)
        archs = full_space.sample_many(5, rng)
        feats = encode_architectures(full_space, archs)
        batch = predictor.predict(feats)
        scalars = [predictor.predict_arch(a) for a in archs]
        assert np.allclose(batch, scalars)


class TestInterface:
    def test_always_fitted(self, full_space):
        assert AnalyticCostPredictor(full_space).fitted

    def test_tensor_path_matches_and_differentiates(self, full_space, rng):
        predictor = AnalyticCostPredictor(full_space)
        arch = full_space.sample(rng)
        feats = nn.Tensor(arch.one_hot(full_space.num_operators).reshape(1, -1),
                          requires_grad=True)
        out = predictor.predict_tensor(feats)
        assert np.isclose(float(out.data[0]), predictor.predict_arch(arch))
        out.sum().backward()
        # the gradient of a linear predictor is its cost table, exactly
        assert np.allclose(feats.grad.reshape(-1),
                           predictor.table.reshape(-1))

    def test_unknown_metric_rejected(self, full_space):
        with pytest.raises(ValueError):
            AnalyticCostPredictor(full_space, "joules")

    def test_validates_arch(self, full_space):
        from repro.search_space.space import Architecture

        predictor = AnalyticCostPredictor(full_space)
        with pytest.raises(ValueError):
            predictor.predict_arch(Architecture((0,)))

    def test_usable_as_search_constraint(self, full_space):
        """The paper's mobile setting (multi-adds < 600M) as a constraint."""
        from repro.core.lightnas import LightNAS, LightNASConfig

        predictor = AnalyticCostPredictor(full_space, "macs_m")
        config = LightNASConfig.paper(420.0, space=full_space, seed=0,
                                      metric_name="macs_m", epochs=25,
                                      steps_per_epoch=20)
        result = LightNAS(config, predictor=predictor).search()
        macs = count_macs(full_space, result.architecture) / 1e6
        assert abs(macs - 420.0) < 25.0
