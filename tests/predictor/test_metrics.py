"""Tests of predictor evaluation metrics."""

import numpy as np
import pytest

from repro.predictor import metrics


class TestRMSE:
    def test_zero_for_exact(self):
        x = np.array([1.0, 2.0, 3.0])
        assert metrics.rmse(x, x) == 0.0

    def test_known_value(self):
        assert np.isclose(metrics.rmse(np.array([0.0, 0.0]),
                                       np.array([3.0, 4.0])),
                          np.sqrt(12.5))

    def test_scale_with_constant_offset(self):
        truth = np.array([1.0, 2.0, 3.0])
        assert np.isclose(metrics.rmse(truth + 2.0, truth), 2.0)


class TestMAEMax:
    def test_mae(self):
        assert metrics.mae(np.array([1.0, -1.0]), np.zeros(2)) == 1.0

    def test_max_error(self):
        assert metrics.max_error(np.array([1.0, -5.0]), np.zeros(2)) == 5.0


class TestRankCorrelation:
    def test_perfect_order(self):
        pred = np.array([1.0, 2.0, 3.0, 4.0])
        assert metrics.kendall_tau(pred, pred * 10) == pytest.approx(1.0)
        assert metrics.spearman_rho(pred, pred ** 3) == pytest.approx(1.0)

    def test_reversed_order(self):
        pred = np.array([1.0, 2.0, 3.0, 4.0])
        assert metrics.kendall_tau(pred, -pred) == pytest.approx(-1.0)

    def test_rank_ignores_monotone_distortion(self):
        rng = np.random.default_rng(0)
        truth = rng.normal(size=50)
        distorted = np.exp(truth)  # monotone transform
        assert metrics.spearman_rho(distorted, truth) == pytest.approx(1.0)
