"""Tests of strict-fairness supernet training (FairNAS protocol)."""

import numpy as np
import pytest

from repro import nn
from repro.proxy.fairness import StrictFairnessTrainer
from repro.proxy.supernet import SuperNet


@pytest.fixture
def trainer(tiny_space, tiny_task):
    rng = np.random.default_rng(0)
    supernet = SuperNet(tiny_space, rng)
    optimizer = nn.SGD(supernet.parameters(), lr=0.05, momentum=0.9)
    return StrictFairnessTrainer(supernet, tiny_task, optimizer,
                                 np.random.default_rng(1))


class TestFairRound:
    def test_round_has_k_models(self, trainer, tiny_space):
        archs = trainer.sample_fair_round()
        assert len(archs) == tiny_space.num_operators

    def test_each_operator_appears_exactly_once_per_layer(self, trainer,
                                                          tiny_space):
        archs = trainer.sample_fair_round()
        for layer in range(tiny_space.num_layers):
            seen = sorted(arch.op_indices[layer] for arch in archs)
            assert seen == list(range(tiny_space.num_operators))

    def test_rounds_are_random(self, trainer):
        a = [arch.op_indices for arch in trainer.sample_fair_round()]
        b = [arch.op_indices for arch in trainer.sample_fair_round()]
        assert a != b


class TestTraining:
    def test_strict_fairness_invariant(self, trainer, tiny_space):
        report = trainer.train(rounds=3, batch_size=8)
        assert report.is_strictly_fair
        assert np.all(report.update_counts == 3)

    def test_unfair_counts_detected(self):
        from repro.proxy.fairness import FairnessReport

        counts = np.ones((2, 3), dtype=np.int64)
        counts[0, 0] = 5
        assert not FairnessReport(counts, rounds=1, mean_loss=0.0).is_strictly_fair

    def test_loss_decreases_over_rounds(self, tiny_space, tiny_task):
        rng = np.random.default_rng(2)
        supernet = SuperNet(tiny_space, rng)
        optimizer = nn.SGD(supernet.parameters(), lr=0.05, momentum=0.9)
        trainer = StrictFairnessTrainer(supernet, tiny_task, optimizer,
                                        np.random.default_rng(3))
        first = trainer.train_round(batch_size=12)
        for _ in range(8):
            last = trainer.train_round(batch_size=12)
        assert last < first

    def test_every_parameter_updated_after_one_round(self, trainer):
        """Strict fairness means *all* candidate operators train each round —
        after one round no parameter keeps its initial value frozen."""
        before = {name: p.data.copy()
                  for name, p in trainer.supernet.named_parameters()}
        trainer.train_round(batch_size=8)
        moved = 0
        for name, p in trainer.supernet.named_parameters():
            if not np.array_equal(before[name], p.data):
                moved += 1
        # BN of untouched branches may be static, but conv weights of every
        # candidate must move; require a large majority of parameters moved
        assert moved > 0.9 * len(before)

    def test_rounds_validation(self, trainer):
        with pytest.raises(ValueError):
            trainer.train(rounds=0)
