"""Tests of the calibrated ImageNet accuracy oracle."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.proxy.accuracy_model import AccuracyOracle, EvalResult
from repro.search_space.operators import SKIP_INDEX
from repro.search_space.space import Architecture


class TestEvalResult:
    def test_validates_percentages(self):
        with pytest.raises(ValueError):
            EvalResult(top1=120.0, top5=90.0)


class TestCapacity:
    def test_skip_contributes_nothing(self, full_space, full_oracle):
        dense = Architecture((0,) * 21)
        sparse = Architecture((0,) * 20 + (SKIP_INDEX,))
        assert full_oracle.capacity(sparse) < full_oracle.capacity(dense)

    def test_monotone_in_expansion(self, full_space, full_oracle):
        e3 = Architecture((0,) * 21)
        e6 = Architecture((1,) * 21)
        assert full_oracle.capacity(e6) > full_oracle.capacity(e3)

    def test_monotone_in_kernel(self, full_space, full_oracle):
        k3 = Architecture((1,) * 21)
        k7 = Architecture((5,) * 21)
        assert full_oracle.capacity(k7) > full_oracle.capacity(k3)

    def test_value_matrix_shape(self, full_space, full_oracle):
        table = full_oracle.value_matrix()
        assert table.shape == (21, 7)
        assert np.all(table[:, SKIP_INDEX] == 0.0)

    def test_position_dependence(self, full_space, full_oracle):
        """Kernels matter early, expansion matters late (layer diversity)."""
        table = full_oracle.value_matrix()
        early, late = 0, 20
        kernel_gain_early = table[early, 4] - table[early, 0]  # k7e3 - k3e3
        kernel_gain_late = table[late, 4] - table[late, 0]
        expansion_gain_early = table[early, 1] - table[early, 0]  # k3e6 - k3e3
        expansion_gain_late = table[late, 1] - table[late, 0]
        assert kernel_gain_early > kernel_gain_late
        assert expansion_gain_late > expansion_gain_early


class TestEvaluate:
    def test_accuracy_band(self, full_space, full_oracle, rng):
        """Random architectures land in the paper's Table-2 band."""
        results = [full_oracle.evaluate(full_space.sample(rng))
                   for _ in range(100)]
        top1s = np.array([r.top1 for r in results])
        # random architectures (≈3 skip layers on average) sit below the
        # searched 74–76 band but far above the all-skip floor
        assert 58.0 < top1s.mean() < 72.0
        assert top1s.max() < 78.0

    def test_top5_above_top1(self, full_space, full_oracle, rng):
        result = full_oracle.evaluate(full_space.sample(rng))
        assert result.top5 > result.top1

    def test_top5_map_matches_paper_anchors(self, full_oracle):
        # top5 = 59.9 + 0.432·top1 interpolates (72.0, 91.0), (76.4, 92.9)
        assert abs(59.9 + 0.432 * 72.0 - 91.0) < 0.2
        assert abs(59.9 + 0.432 * 76.4 - 92.9) < 0.2

    def test_quick_training_penalty(self, full_space, full_oracle, rng):
        arch = full_space.sample(rng)
        full = full_oracle.evaluate(arch, epochs=360).top1
        quick = full_oracle.evaluate(arch, epochs=50).top1
        assert 5.0 < full - quick < 9.0

    def test_se_bonus(self, full_space, full_oracle, rng):
        arch = full_space.sample(rng)
        base = full_oracle.evaluate(arch).top1
        se = full_oracle.evaluate(arch, with_se=True).top1
        assert 0.2 < se - base < 1.0

    def test_all_skip_scores_terribly(self, full_space, full_oracle):
        collapse = full_oracle.evaluate(Architecture((SKIP_INDEX,) * 21)).top1
        dense = full_oracle.evaluate(Architecture((1,) * 21)).top1
        assert collapse < dense - 10.0

    def test_deterministic(self, full_space, full_oracle, rng):
        arch = full_space.sample(rng)
        assert full_oracle.evaluate(arch) == full_oracle.evaluate(arch)

    def test_jitter_varies_across_archs_but_bounded(self, full_space, full_oracle):
        a = Architecture((1,) * 21)
        b = Architecture((1,) * 20 + (3,))
        ja = full_oracle._jitter(a)
        jb = full_oracle._jitter(b)
        assert ja != jb
        assert abs(ja) <= full_oracle.JITTER and abs(jb) <= full_oracle.JITTER


class TestScaling:
    def test_width_scaling_sublinear(self, full_space):
        narrow = AccuracyOracle(full_space, width_mult=0.5)
        base = AccuracyOracle(full_space, width_mult=1.0)
        wide = AccuracyOracle(full_space, width_mult=1.5)
        arch = Architecture((1,) * 21)
        t_narrow = narrow.evaluate(arch).top1
        t_base = base.evaluate(arch).top1
        t_wide = wide.evaluate(arch).top1
        assert t_narrow < t_base < t_wide
        # diminishing returns: the gain above 1.0 is smaller than the loss below
        assert (t_wide - t_base) < (t_base - t_narrow)

    def test_resolution_scaling(self, full_space):
        low = AccuracyOracle(full_space, resolution=128)
        high = AccuracyOracle(full_space, resolution=224)
        arch = Architecture((1,) * 21)
        assert low.evaluate(arch).top1 < high.evaluate(arch).top1

    def test_invalid_width(self, full_space):
        with pytest.raises(ValueError):
            AccuracyOracle(full_space, width_mult=0.0)


class TestDifferentiableLoss:
    def test_gradient_prefers_capacity(self, full_space, full_oracle):
        """∂loss/∂P̄ must be negative for ops the oracle rewards (more
        capacity ⇒ lower loss), and zero-capacity skip entries must have
        weaker pull."""
        arch = Architecture((0,) * 21)
        gates = nn.Tensor(arch.one_hot(7), requires_grad=True)
        loss = full_oracle.differentiable_loss(gates)
        loss.backward()
        table = full_oracle.value_matrix()
        # gradient is (dloss/dS) * V; dloss/dS < 0, so grad ∝ -V
        assert gates.grad[0, 1] < gates.grad[0, SKIP_INDEX]

    def test_loss_decreases_with_capacity(self, full_space, full_oracle):
        small = nn.Tensor(Architecture((0,) * 21).one_hot(7))
        big = nn.Tensor(Architecture((5,) * 21).one_hot(7))
        assert (full_oracle.differentiable_loss(big).item()
                < full_oracle.differentiable_loss(small).item())

    def test_loss_scale_comparable_to_cross_entropy(self, full_space, full_oracle):
        gates = nn.Tensor(Architecture((1,) * 21).one_hot(7))
        value = full_oracle.differentiable_loss(gates).item()
        assert 0.1 < value < 3.0

    def test_matches_evaluate_ordering(self, full_space, full_oracle, rng):
        """Differentiable loss and discrete evaluation must rank architectures
        consistently (up to jitter/diversity bonuses)."""
        archs = [Architecture((0,) * 21), Architecture((1,) * 21),
                 Architecture((5,) * 21)]
        losses = [full_oracle.differentiable_loss(
            nn.Tensor(a.one_hot(7))).item() for a in archs]
        top1s = [full_oracle.evaluate(a).top1 for a in archs]
        assert np.argsort(losses).tolist() == np.argsort(top1s)[::-1].tolist()
