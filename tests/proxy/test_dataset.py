"""Tests of the synthetic proxy classification task."""

import numpy as np
import pytest

from repro.proxy.dataset import SyntheticTask


class TestConstruction:
    def test_fold_sizes(self):
        task = SyntheticTask(num_classes=4, resolution=8, train_size=40,
                             valid_size=20, seed=0)
        assert len(task.train) == 40
        assert len(task.valid) == 20

    def test_image_shapes(self):
        task = SyntheticTask(num_classes=3, resolution=12, train_size=10,
                             valid_size=5, seed=0)
        assert task.train.images.shape == (10, 3, 12, 12)
        assert task.train.labels.shape == (10,)

    def test_labels_in_range(self):
        task = SyntheticTask(num_classes=5, resolution=8, train_size=50,
                             valid_size=10, seed=1)
        assert task.train.labels.min() >= 0
        assert task.train.labels.max() < 5

    def test_deterministic_by_seed(self):
        a = SyntheticTask(num_classes=3, resolution=8, train_size=10,
                          valid_size=5, seed=7)
        b = SyntheticTask(num_classes=3, resolution=8, train_size=10,
                          valid_size=5, seed=7)
        assert np.array_equal(a.train.images, b.train.images)
        assert np.array_equal(a.train.labels, b.train.labels)

    def test_different_seeds_differ(self):
        a = SyntheticTask(num_classes=3, resolution=8, train_size=10,
                          valid_size=5, seed=7)
        b = SyntheticTask(num_classes=3, resolution=8, train_size=10,
                          valid_size=5, seed=8)
        assert not np.array_equal(a.train.images, b.train.images)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTask(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticTask(resolution=2)


class TestLearnability:
    def test_classes_are_separable_by_template_correlation(self):
        """A nearest-template classifier must beat chance by a wide margin —
        otherwise the task carries no signal for L_valid."""
        task = SyntheticTask(num_classes=5, resolution=12, train_size=100,
                             valid_size=100, noise=0.3, seed=3)
        templates = task._templates.reshape(5, -1)
        images = task.valid.images.reshape(len(task.valid), -1)
        scores = images @ templates.T
        predictions = scores.argmax(axis=1)
        accuracy = (predictions == task.valid.labels).mean()
        # shift augmentation + noise keep this well below 1.0, but the
        # signal must be far above the 0.2 chance level
        assert accuracy > 0.35

    def test_noise_parameter_hurts_separability(self):
        def acc(noise):
            task = SyntheticTask(num_classes=4, resolution=12, train_size=10,
                                 valid_size=200, noise=noise, seed=5)
            templates = task._templates.reshape(4, -1)
            images = task.valid.images.reshape(len(task.valid), -1)
            return (images @ templates.T).argmax(axis=1) == task.valid.labels

        assert acc(0.1).mean() >= acc(3.0).mean()


class TestBatching:
    def test_batches_cover_fold(self):
        task = SyntheticTask(num_classes=3, resolution=8, train_size=25,
                             valid_size=5, seed=0)
        seen = 0
        for batch in task.batches(task.train, batch_size=8):
            seen += len(batch)
        assert seen == 25

    def test_batch_size_respected(self):
        task = SyntheticTask(num_classes=3, resolution=8, train_size=25,
                             valid_size=5, seed=0)
        sizes = [len(b) for b in task.batches(task.train, batch_size=8)]
        assert sizes == [8, 8, 8, 1]

    def test_no_shuffle_is_ordered(self):
        task = SyntheticTask(num_classes=3, resolution=8, train_size=10,
                             valid_size=5, seed=0)
        first = next(iter(task.batches(task.train, 10, shuffle=False)))
        assert np.array_equal(first.labels, task.train.labels)

    def test_sample_batch_size(self):
        task = SyntheticTask(num_classes=3, resolution=8, train_size=10,
                             valid_size=5, seed=0)
        batch = task.sample_batch(task.train, 4)
        assert len(batch) == 4

    def test_invalid_batch_size(self):
        task = SyntheticTask(num_classes=3, resolution=8, train_size=10,
                             valid_size=5, seed=0)
        with pytest.raises(ValueError):
            list(task.batches(task.train, 0))
