"""Tests of the weight-sharing supernet and stand-alone builder."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.proxy.supernet import SuperNet, build_standalone
from repro.search_space.space import Architecture


@pytest.fixture(scope="module")
def supernet(tiny_space):
    return SuperNet(tiny_space, np.random.default_rng(0))


def one_hot_gates(space, arch, requires_grad=False):
    return nn.Tensor(arch.one_hot(space.num_operators), requires_grad=requires_grad)


def batch_images(space, n=2, seed=0):
    r = space.macro.input_resolution
    return nn.Tensor(np.random.default_rng(seed).normal(size=(n, 3, r, r)))


class TestSinglePath:
    def test_output_shape(self, tiny_space, supernet):
        arch = tiny_space.sample(np.random.default_rng(1))
        out = supernet.forward_single_path(batch_images(tiny_space),
                                           one_hot_gates(tiny_space, arch))
        assert out.shape == (2, tiny_space.macro.num_classes)

    def test_single_path_active_count(self, tiny_space, supernet):
        arch = tiny_space.sample(np.random.default_rng(2))
        supernet.forward_single_path(batch_images(tiny_space),
                                     one_hot_gates(tiny_space, arch))
        assert supernet.last_active_paths == tiny_space.num_layers

    def test_matches_forward_arch(self, tiny_space, supernet):
        """Gated single-path forward ≡ plain discrete forward (gates are 1)."""
        arch = tiny_space.sample(np.random.default_rng(3))
        x = batch_images(tiny_space, seed=3)
        supernet.eval()
        gated = supernet.forward_single_path(x, one_hot_gates(tiny_space, arch))
        plain = supernet.forward_arch(x, arch)
        supernet.train(True)
        assert np.allclose(gated.data, plain.data)

    def test_gate_gradient_flows_to_alpha(self, tiny_space, supernet):
        """The straight-through chain of Eq. (12): loss → gates → α."""
        alpha = nn.Parameter(tiny_space.uniform_alpha())
        gates = F.hard_binarize_ste(F.softmax(alpha))
        out = supernet.forward_single_path(batch_images(tiny_space), gates)
        loss = F.cross_entropy(out, np.zeros(2, dtype=np.int64))
        loss.backward()
        assert alpha.grad is not None
        assert np.abs(alpha.grad).sum() > 0

    def test_wrong_gate_shape_raises(self, tiny_space, supernet):
        with pytest.raises(ValueError):
            supernet.forward_single_path(batch_images(tiny_space),
                                         nn.Tensor(np.ones((2, 2))))

    def test_only_active_ops_get_weight_gradients(self, tiny_space):
        net = SuperNet(tiny_space, np.random.default_rng(5))
        arch = Architecture((0,) * tiny_space.num_layers)
        out = net.forward_single_path(batch_images(tiny_space),
                                      one_hot_gates(tiny_space, arch))
        out.sum().backward()
        active = net.choice_blocks[0][0]
        inactive = net.choice_blocks[0][1]
        assert any(p.grad is not None for p in active.parameters())
        assert all(p.grad is None for p in inactive.parameters())


class TestMultiPath:
    def test_all_paths_active(self, tiny_space, supernet):
        weights = nn.Tensor(np.full(
            (tiny_space.num_layers, tiny_space.num_operators),
            1.0 / tiny_space.num_operators))
        supernet.forward_weighted(batch_images(tiny_space), weights)
        assert supernet.last_active_paths == (
            tiny_space.num_layers * tiny_space.num_operators)

    def test_memory_footprint_ratio(self, tiny_space, supernet):
        """The §3.3 claim: multi-path activates K× the operators."""
        arch = tiny_space.sample(np.random.default_rng(6))
        supernet.forward_single_path(batch_images(tiny_space),
                                     one_hot_gates(tiny_space, arch))
        single = supernet.last_active_paths
        weights = nn.Tensor(np.full(
            (tiny_space.num_layers, tiny_space.num_operators),
            1.0 / tiny_space.num_operators))
        supernet.forward_weighted(batch_images(tiny_space), weights)
        assert supernet.last_active_paths == tiny_space.num_operators * single

    def test_one_hot_weights_equal_single_path(self, tiny_space, supernet):
        arch = tiny_space.sample(np.random.default_rng(7))
        x = batch_images(tiny_space, seed=7)
        supernet.eval()
        multi = supernet.forward_weighted(x, one_hot_gates(tiny_space, arch),
                                          threshold=0.5)
        single = supernet.forward_single_path(x, one_hot_gates(tiny_space, arch))
        supernet.train(True)
        assert np.allclose(multi.data, single.data)

    def test_threshold_prunes_paths(self, tiny_space, supernet):
        weights = np.full((tiny_space.num_layers, tiny_space.num_operators), 0.01)
        weights[:, 0] = 1.0 - 0.01 * (tiny_space.num_operators - 1)
        supernet.forward_weighted(batch_images(tiny_space), nn.Tensor(weights),
                                  threshold=0.5)
        assert supernet.last_active_paths == tiny_space.num_layers

    def test_zero_weight_candidate_never_executed(self, tiny_space, supernet):
        """Masked-weight callers (threshold<0) must not run zeroed paths.

        ProxylessNAS-style two-path sampling zeroes all other candidates
        and passes a negative threshold; a zero weight contributes nothing
        to the blend, so executing the operator would be pure waste.
        """
        weights = np.zeros((tiny_space.num_layers, tiny_space.num_operators))
        weights[:, 0] = 0.6
        weights[:, 1] = 0.4
        calls = []
        zeroed = supernet.choice_blocks[0][2]
        orig_forward = zeroed.forward
        zeroed.forward = lambda x: (calls.append(1), orig_forward(x))[1]
        try:
            supernet.forward_weighted(batch_images(tiny_space),
                                      nn.Tensor(weights), threshold=-1.0)
        finally:
            zeroed.forward = orig_forward
        assert calls == [], "zero-weight candidate was executed"
        assert supernet.last_active_paths == 2 * tiny_space.num_layers

    def test_all_pruned_raises(self, tiny_space, supernet):
        weights = nn.Tensor(np.zeros(
            (tiny_space.num_layers, tiny_space.num_operators)))
        with pytest.raises(ValueError):
            supernet.forward_weighted(batch_images(tiny_space), weights,
                                      threshold=0.5)


class TestPathParameters:
    def test_subset_of_all(self, tiny_space, supernet):
        arch = tiny_space.sample(np.random.default_rng(8))
        path = supernet.path_parameters(arch)
        assert 0 < len(path) < len(supernet.parameters())


class TestStandalone:
    def test_forward_shape(self, tiny_space, rng):
        arch = tiny_space.sample(rng)
        model = build_standalone(tiny_space, arch, np.random.default_rng(0))
        out = model(batch_images(tiny_space))
        assert out.shape == (2, tiny_space.macro.num_classes)

    def test_with_se(self, tiny_space, rng):
        arch = Architecture((1,) * tiny_space.num_layers)
        base = build_standalone(tiny_space, arch, np.random.default_rng(0),
                                dropout=0.0)
        se = build_standalone(tiny_space, arch, np.random.default_rng(0),
                              dropout=0.0, with_se_last=2)
        assert se.num_parameters() > base.num_parameters()

    def test_trainable(self, tiny_space, rng):
        arch = tiny_space.sample(rng)
        model = build_standalone(tiny_space, arch, np.random.default_rng(0),
                                 dropout=0.0)
        out = model(batch_images(tiny_space))
        F.cross_entropy(out, np.zeros(2, dtype=np.int64)).backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert any(grads)

    def test_validates_arch(self, tiny_space):
        with pytest.raises(ValueError):
            build_standalone(tiny_space, Architecture((0,)),
                             np.random.default_rng(0))
