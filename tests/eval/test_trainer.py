"""Tests of stand-alone proxy-task training (§4.1 protocol)."""

import numpy as np
import pytest

from repro.eval.trainer import train_standalone
from repro.search_space.space import Architecture


class TestTrainStandalone:
    @pytest.fixture(scope="class")
    def report(self, tiny_space, tiny_task):
        arch = Architecture((1,) * tiny_space.num_layers)
        return train_standalone(tiny_space, arch, tiny_task, epochs=10,
                                batch_size=24, base_lr=0.08, seed=0)

    def test_loss_decreases(self, report):
        assert report.train_losses[-1] < report.train_losses[0]

    def test_learns_above_chance(self, report, tiny_task):
        chance = 1.0 / tiny_task.num_classes
        assert report.valid_accuracy > chance * 1.5

    def test_report_lengths(self, report):
        assert len(report.train_losses) == 10
        assert report.epochs == 10

    def test_summary_keys(self, report):
        summary = report.summary()
        assert set(summary) == {"train_accuracy", "valid_accuracy",
                                "final_loss", "epochs"}

    def test_deterministic_by_seed(self, tiny_space, tiny_task):
        arch = Architecture((0,) * tiny_space.num_layers)
        r1 = train_standalone(tiny_space, arch, tiny_task, epochs=2,
                              batch_size=24, seed=5)
        r2 = train_standalone(tiny_space, arch, tiny_task, epochs=2,
                              batch_size=24, seed=5)
        # weights are seeded identically; only the task's batch rng is shared
        # state, so losses may differ slightly — final accuracy must agree
        # in distribution; here we check the training ran both times
        assert len(r1.train_losses) == len(r2.train_losses) == 2
