"""Tests of Table-2-style evaluation rows."""

import pytest

from repro.eval.imagenet import ImageNetEvaluator
from repro.search_space.space import Architecture


@pytest.fixture(scope="module")
def evaluator(full_space, full_latency_model, full_oracle):
    return ImageNetEvaluator(full_space, full_latency_model, full_oracle)


class TestRows:
    def test_row_fields(self, evaluator, full_space, rng):
        row = evaluator.evaluate(full_space.sample(rng), name="x",
                                 method="differentiable",
                                 search_cost_gpu_hours=10.0)
        assert row.name == "x"
        assert 0 < row.top1 < row.top5 <= 100
        assert row.latency_ms > 0
        assert row.macs_m > 0
        assert row.params_m > 0
        assert row.search_cost_gpu_hours == 10.0

    def test_as_dict_round_values(self, evaluator, full_space, rng):
        d = evaluator.evaluate(full_space.sample(rng), name="y").as_dict()
        assert set(d) >= {"name", "method", "top1", "top5", "latency_ms",
                          "macs_m", "params_m"}

    def test_se_increases_everything(self, evaluator):
        arch = Architecture((1,) * 21)
        base = evaluator.evaluate(arch, name="base")
        se = evaluator.evaluate(arch, name="se", with_se_last=9)
        # Table 4: SE adds accuracy, latency and FLOPs
        assert se.top1 > base.top1
        assert se.latency_ms > base.latency_ms
        assert se.macs_m > base.macs_m

    def test_quick_epochs_lower_accuracy(self, evaluator, full_space, rng):
        arch = full_space.sample(rng)
        full = evaluator.evaluate(arch, name="a", epochs=360)
        quick = evaluator.evaluate(arch, name="a", epochs=50)
        assert quick.top1 < full.top1

    def test_default_models_built(self, full_space):
        evaluator = ImageNetEvaluator(full_space)
        row = evaluator.evaluate(Architecture((1,) * 21), name="z")
        assert row.latency_ms > 0
