"""Tests of the model zoo and weight serialisation."""

import numpy as np
import pytest

from repro import nn, zoo
from repro.proxy.supernet import build_standalone


class TestReferenceArchitectures:
    def test_lightnets_fit_the_space(self, full_space):
        for target, arch in zoo.LIGHTNETS.items():
            full_space.validate(arch)

    def test_lightnets_hit_their_targets(self, full_space, full_latency_model):
        for target, arch in zoo.LIGHTNETS.items():
            latency = full_latency_model.latency_ms(arch)
            assert abs(latency - target) < 1.0, (target, latency)

    def test_lightnets_accuracy_monotone(self, full_space, full_oracle):
        tops = [full_oracle.evaluate(zoo.lightnet(t)).top1
                for t in sorted(zoo.LIGHTNETS)]
        assert tops == sorted(tops) or all(
            b >= a - 0.25 for a, b in zip(tops, tops[1:]))
        assert tops[-1] - tops[0] > 0.5

    def test_lightnet_lookup(self):
        assert zoo.lightnet(24) == zoo.LIGHTNETS[24.0]
        with pytest.raises(KeyError):
            zoo.lightnet(25.0)

    def test_corner_points_ordering(self, full_space, full_latency_model):
        lat = full_latency_model.latency_ms
        assert (lat(zoo.ALL_SKIP) < lat(zoo.SMALLEST)
                < lat(zoo.MOBILENET_V2) < lat(zoo.LARGEST))

    def test_lightnets_dominate_mobilenetv2(self, full_space, full_oracle,
                                            full_latency_model):
        """Every reference LightNet beats the manual baseline's top-1."""
        base = full_oracle.evaluate(zoo.MOBILENET_V2).top1
        for target, arch in zoo.LIGHTNETS.items():
            assert full_oracle.evaluate(arch).top1 > base

    def test_mobile_setting(self, full_space):
        from repro.hardware.flops import count_macs

        for arch in zoo.LIGHTNETS.values():
            assert count_macs(full_space, arch) < 600e6


class TestWeightSerialisation:
    def test_round_trip_standalone(self, tiny_space, tmp_path):
        rng = np.random.default_rng(0)
        arch = tiny_space.sample(rng)
        model = build_standalone(tiny_space, arch, rng, dropout=0.0)
        path = str(tmp_path / "weights.npz")
        zoo.save_weights(model, path)

        clone = build_standalone(tiny_space, arch, np.random.default_rng(9),
                                 dropout=0.0)
        zoo.load_weights(clone, path)
        r = tiny_space.macro.input_resolution
        x = nn.Tensor(np.random.default_rng(1).normal(size=(1, 3, r, r)))
        model.eval()
        clone.eval()
        assert np.allclose(model(x).data, clone(x).data)

    def test_load_rejects_wrong_architecture(self, tiny_space, tmp_path):
        from repro.search_space.space import Architecture

        rng = np.random.default_rng(0)
        source_arch = tiny_space.sample(rng)
        source = build_standalone(tiny_space, source_arch, rng, dropout=0.0)
        path = str(tmp_path / "w.npz")
        zoo.save_weights(source, path)

        shifted = Architecture(tuple(
            (i + 1) % tiny_space.num_operators for i in source_arch.op_indices))
        other = build_standalone(tiny_space, shifted, np.random.default_rng(1),
                                 dropout=0.0)
        with pytest.raises((KeyError, ValueError)):
            zoo.load_weights(other, path)
