"""Tests of the SSDLite detection-transfer surrogate (Table 3)."""

import pytest

from repro.eval.detection import DetectionEvaluator
from repro.search_space.space import Architecture


@pytest.fixture(scope="module")
def evaluator(full_space, full_latency_model, full_oracle):
    return DetectionEvaluator(full_space, full_latency_model, full_oracle)


class TestDetection:
    def test_ap_band_matches_table3(self, evaluator, full_space, rng):
        """Table 3 APs sit around 20–22 for competitive backbones."""
        result = evaluator.evaluate(Architecture((1,) * 21), name="uniform")
        assert 17.0 < result.ap < 24.0

    def test_better_backbone_better_ap(self, evaluator):
        weak = evaluator.evaluate(Architecture((0,) * 21), name="weak")
        strong = evaluator.evaluate(Architecture((5,) * 21), name="strong")
        assert strong.ap > weak.ap

    def test_latency_band_matches_table3(self, evaluator, full_space,
                                         full_latency_model, rng):
        """A ~20 ms classification backbone becomes a ~60–80 ms detector."""
        arch = full_space.sample(rng)
        backbone = full_latency_model.latency_ms(arch)
        detector = evaluator.evaluate(arch, name="a").latency_ms
        assert detector > 2 * backbone
        assert detector > backbone * evaluator.RESOLUTION_FACTOR

    def test_submetric_ordering(self, evaluator, full_space, rng):
        r = evaluator.evaluate(full_space.sample(rng), name="a")
        assert r.ap50 > r.ap > r.ap_small
        assert r.ap_large > r.ap_medium > r.ap_small

    def test_deterministic(self, evaluator, full_space, rng):
        arch = full_space.sample(rng)
        assert (evaluator.evaluate(arch, name="a").ap
                == evaluator.evaluate(arch, name="a").ap)

    def test_as_dict(self, evaluator, full_space, rng):
        d = evaluator.evaluate(full_space.sample(rng), name="bb").as_dict()
        assert set(d) == {"name", "AP", "AP50", "AP75", "APS", "APM", "APL",
                          "latency_ms"}
