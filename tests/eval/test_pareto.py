"""Tests of the Pareto-front analysis utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.pareto import (
    FrontPoint,
    dominates,
    front_gap,
    hypervolume_2d,
    pareto_front,
    pareto_mask,
)


P = FrontPoint


class TestDominates:
    def test_strictly_better(self):
        assert dominates(P(1.0, 10.0), P(2.0, 5.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(P(1.0, 10.0), P(1.0, 10.0))

    def test_better_one_axis_equal_other(self):
        assert dominates(P(1.0, 10.0), P(1.0, 9.0))
        assert dominates(P(1.0, 10.0), P(2.0, 10.0))

    def test_tradeoff_is_incomparable(self):
        a, b = P(1.0, 5.0), P(2.0, 10.0)
        assert not dominates(a, b) and not dominates(b, a)


class TestParetoFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single(self):
        assert pareto_front([P(1, 1)]) == [P(1, 1)]

    def test_removes_dominated(self):
        points = [P(1, 10), P(2, 9), P(3, 12), P(4, 11)]
        front = pareto_front(points)
        assert front == [P(1, 10), P(3, 12)]

    def test_sorted_by_cost(self):
        points = [P(3, 12), P(1, 10), P(2, 11)]
        front = pareto_front(points)
        costs = [p.cost for p in front]
        assert costs == sorted(costs)

    def test_front_qualities_increase(self):
        rng = np.random.default_rng(0)
        points = [P(float(c), float(q))
                  for c, q in rng.uniform(0, 10, size=(50, 2))]
        front = pareto_front(points)
        qualities = [p.quality for p in front]
        assert qualities == sorted(qualities)

    def test_all_points_dominated_by_front(self):
        rng = np.random.default_rng(1)
        points = [P(float(c), float(q))
                  for c, q in rng.uniform(0, 10, size=(40, 2))]
        front = pareto_front(points)
        for point in points:
            assert point in front or any(dominates(f, point) for f in front)


class TestHypervolume:
    def test_empty(self):
        assert hypervolume_2d([], (10.0, 0.0)) == 0.0

    def test_single_point_rectangle(self):
        hv = hypervolume_2d([P(2.0, 8.0)], reference=(10.0, 0.0))
        assert hv == pytest.approx((10.0 - 2.0) * 8.0)

    def test_two_point_staircase(self):
        hv = hypervolume_2d([P(2.0, 5.0), P(6.0, 9.0)], reference=(10.0, 0.0))
        assert hv == pytest.approx((6 - 2) * 5 + (10 - 6) * 9)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume_2d([P(2.0, 8.0)], (10.0, 0.0))
        with_dominated = hypervolume_2d([P(2.0, 8.0), P(5.0, 4.0)],
                                        (10.0, 0.0))
        assert with_dominated == pytest.approx(base)

    def test_points_outside_reference_ignored(self):
        hv = hypervolume_2d([P(12.0, 8.0)], (10.0, 0.0))
        assert hv == 0.0


class TestFrontGap:
    def test_point_on_front(self):
        front = pareto_front([P(1, 10), P(3, 12)])
        assert front_gap(P(3, 12), front) == 0.0

    def test_point_behind_front(self):
        front = pareto_front([P(1, 10), P(3, 12)])
        assert front_gap(P(3, 11), front) == pytest.approx(1.0)

    def test_point_cheaper_than_front(self):
        front = pareto_front([P(5, 10)])
        assert front_gap(P(1, 2), front) == 0.0

    def test_point_extends_front(self):
        front = pareto_front([P(1, 10)])
        assert front_gap(P(2, 15), front) == 0.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.floats(0, 100, allow_nan=False)),
                min_size=1, max_size=30))
def test_front_is_mutually_nondominated_property(coords):
    points = [P(c, q) for c, q in coords]
    front = pareto_front(points)
    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a, b)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 50, allow_nan=False),
                          st.floats(0, 50, allow_nan=False)),
                min_size=1, max_size=30))
def test_hypervolume_monotone_under_additions_property(coords):
    points = [P(c, q) for c, q in coords]
    reference = (60.0, -1.0)
    partial = hypervolume_2d(points[:-1], reference) if len(points) > 1 else 0.0
    full = hypervolume_2d(points, reference)
    assert full >= partial - 1e-9


class TestOnTable2Data:
    def test_lightnets_define_the_frontier(self, full_space, full_oracle,
                                           full_latency_model):
        """The zoo LightNets must all sit on the accuracy/latency front
        formed together with the manual baseline and corner points."""
        from repro import zoo

        candidates = {"mnv2": zoo.MOBILENET_V2, "small": zoo.SMALLEST,
                      "large": zoo.LARGEST}
        candidates.update({f"light{t:.0f}": a for t, a in zoo.LIGHTNETS.items()})
        points = [
            P(full_latency_model.latency_ms(arch),
              full_oracle.evaluate(arch).top1, name)
            for name, arch in candidates.items()
        ]
        front = pareto_front(points)
        for point in points:
            if point.name.startswith("light"):
                assert front_gap(point, front) < 0.25, point


class TestParetoMask:
    def test_empty(self):
        assert pareto_mask(np.zeros(0), np.zeros(0)).shape == (0,)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pareto_mask(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError):
            pareto_mask(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_duplicate_keeps_first_occurrence(self):
        mask = pareto_mask(np.array([1.0, 1.0, 2.0]), np.array([5.0, 5.0, 6.0]))
        assert mask.tolist() == [True, False, True]

    def test_agrees_with_pareto_front(self):
        rng = np.random.default_rng(0)
        costs, qualities = rng.random(200) * 10, rng.random(200) * 10
        points = [P(c, q) for c, q in zip(costs, qualities)]
        front = {(p.cost, p.quality) for p in pareto_front(points)}
        kept = {(costs[i], qualities[i])
                for i in np.nonzero(pareto_mask(costs, qualities))[0]}
        assert kept == front


@settings(max_examples=60, deadline=None)
@given(coords=st.lists(st.tuples(st.floats(0, 50, allow_nan=False),
                                 st.floats(0, 50, allow_nan=False)),
                       min_size=1, max_size=40))
def test_pareto_mask_matches_bruteforce_property(coords):
    """The vectorized sweep must agree with the O(N²) domination scan
    (with first-occurrence tie-breaking on duplicate coordinates)."""
    costs = np.array([c for c, _ in coords])
    qualities = np.array([q for _, q in coords])
    points = [P(c, q) for c, q in coords]
    expected = np.zeros(len(points), dtype=bool)
    seen = set()
    for i, p in enumerate(points):
        undominated = not any(dominates(other, p) for other in points)
        first = (p.cost, p.quality) not in seen
        seen.add((p.cost, p.quality))
        expected[i] = undominated and first
    assert pareto_mask(costs, qualities).tolist() == expected.tolist()
