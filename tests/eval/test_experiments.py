"""Tests of the experiments harness (reporting + shared context)."""

import json
import os

import numpy as np
import pytest

from repro.experiments.reporting import ascii_series, render_table, save_json
from repro.experiments.shared import fit_latency_predictor


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "xyz" in lines[3]

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table 2")
        assert out.splitlines()[0] == "Table 2"

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out

    def test_float_formatting(self):
        out = render_table(["x"], [[1.23456]])
        assert "1.23" in out


class TestAsciiSeries:
    def test_contains_extremes(self):
        out = ascii_series([1.0, 5.0, 3.0], label="metric")
        assert "min 1" in out and "max 5" in out

    def test_empty(self):
        assert "(empty)" in ascii_series([], label="x")

    def test_downsamples_long_series(self):
        out = ascii_series(list(range(1000)), width=40)
        longest = max(len(line) for line in out.splitlines()[1:])
        assert longest <= 40

    def test_flat_series_no_crash(self):
        out = ascii_series([2.0, 2.0, 2.0])
        assert "*" in out


class TestSaveJson:
    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_json("unit_test_artifact", {"rows": [1, 2, 3]})
        with open(path) as handle:
            assert json.load(handle)["rows"] == [1, 2, 3]


class TestPredictorCache:
    def test_cache_round_trip(self, tmp_path, monkeypatch, tiny_space,
                              tiny_latency_model):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        pred1, rmse1 = fit_latency_predictor(
            tiny_space, tiny_latency_model, seed=5, num_samples=300)
        pred2, rmse2 = fit_latency_predictor(
            tiny_space, tiny_latency_model, seed=5, num_samples=300)
        assert rmse1 == rmse2
        arch = tiny_space.sample(np.random.default_rng(0))
        assert np.isclose(pred1.predict_arch(arch), pred2.predict_arch(arch))
        cache_dir = os.path.join(str(tmp_path), "cache")
        assert len(os.listdir(cache_dir)) == 1
