"""Tests of the experiments harness (reporting + shared context)."""

import json
import os

import numpy as np
import pytest

from repro.experiments.reporting import ascii_series, render_table, save_json
from repro.experiments.shared import fit_latency_predictor


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "xyz" in lines[3]

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table 2")
        assert out.splitlines()[0] == "Table 2"

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out

    def test_float_formatting(self):
        out = render_table(["x"], [[1.23456]])
        assert "1.23" in out


class TestAsciiSeries:
    def test_contains_extremes(self):
        out = ascii_series([1.0, 5.0, 3.0], label="metric")
        assert "min 1" in out and "max 5" in out

    def test_empty(self):
        assert "(empty)" in ascii_series([], label="x")

    def test_downsamples_long_series(self):
        out = ascii_series(list(range(1000)), width=40)
        longest = max(len(line) for line in out.splitlines()[1:])
        assert longest <= 40

    def test_flat_series_no_crash(self):
        out = ascii_series([2.0, 2.0, 2.0])
        assert "*" in out


class TestSaveJson:
    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_json("unit_test_artifact", {"rows": [1, 2, 3]})
        with open(path) as handle:
            assert json.load(handle)["rows"] == [1, 2, 3]


class TestPredictorCache:
    def test_cache_round_trip(self, tmp_path, monkeypatch, tiny_space,
                              tiny_latency_model):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        pred1, rmse1 = fit_latency_predictor(
            tiny_space, tiny_latency_model, seed=5, num_samples=300)
        pred2, rmse2 = fit_latency_predictor(
            tiny_space, tiny_latency_model, seed=5, num_samples=300)
        assert rmse1 == rmse2
        arch = tiny_space.sample(np.random.default_rng(0))
        assert np.isclose(pred1.predict_arch(arch), pred2.predict_arch(arch))
        cache_dir = os.path.join(str(tmp_path), "cache")
        assert len(os.listdir(cache_dir)) == 1

    def test_loaded_predictions_bit_identical(self, tmp_path, monkeypatch,
                                              tiny_space, tiny_latency_model):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        pred1, _ = fit_latency_predictor(
            tiny_space, tiny_latency_model, seed=6, num_samples=300)
        pred2, _ = fit_latency_predictor(
            tiny_space, tiny_latency_model, seed=6, num_samples=300)
        ops = tiny_space.sample_indices(32, np.random.default_rng(1))
        feats = tiny_space.encode_many(ops)
        assert np.array_equal(pred1.predict(feats), pred2.predict(feats))

    def test_corrupt_cache_fails_loudly(self, tmp_path, monkeypatch,
                                        tiny_space, tiny_latency_model):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        fit_latency_predictor(tiny_space, tiny_latency_model,
                              seed=7, num_samples=300)
        cache_dir = os.path.join(str(tmp_path), "cache")
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)]
        with open(path, "wb") as handle:
            handle.write(b"not an npz archive")
        with pytest.raises(RuntimeError, match="unreadable"):
            fit_latency_predictor(tiny_space, tiny_latency_model,
                                  seed=7, num_samples=300)

    def test_missing_rmse_fails_loudly(self, tmp_path, monkeypatch,
                                       tiny_space, tiny_latency_model):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        pred, _ = fit_latency_predictor(tiny_space, tiny_latency_model,
                                        seed=8, num_samples=300)
        cache_dir = os.path.join(str(tmp_path), "cache")
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)]
        np.savez(path.removesuffix(".npz"), **pred.state_dict())  # no __rmse
        with pytest.raises(RuntimeError, match="__rmse"):
            fit_latency_predictor(tiny_space, tiny_latency_model,
                                  seed=8, num_samples=300)

    def test_mismatched_state_fails_loudly(self, tmp_path, monkeypatch,
                                           tiny_space, tiny_latency_model):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        pred, _ = fit_latency_predictor(tiny_space, tiny_latency_model,
                                        seed=9, num_samples=300)
        cache_dir = os.path.join(str(tmp_path), "cache")
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)]
        state = pred.state_dict()
        state["__rmse"] = np.array(0.1)
        first_param = next(k for k in state if not k.startswith("__"))
        state.pop(first_param)
        np.savez(path.removesuffix(".npz"), **state)
        with pytest.raises(RuntimeError, match="does not match"):
            fit_latency_predictor(tiny_space, tiny_latency_model,
                                  seed=9, num_samples=300)

    def test_cache_keyed_by_space_geometry(self, tmp_path, monkeypatch,
                                           tiny_space, tiny_latency_model):
        """Regression: a tiny-space fit used to collide with (and crash on)
        a cached paper-scale predictor sharing seed/size/device."""
        from repro.experiments.shared import _space_tag
        from repro.search_space.space import SearchSpace

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        fit_latency_predictor(tiny_space, tiny_latency_model,
                              seed=11, num_samples=300)
        cache_dir = os.path.join(str(tmp_path), "cache")
        (name,) = os.listdir(cache_dir)
        assert f"L{tiny_space.num_layers}K{tiny_space.num_operators}_" in name
        # the paper-scale space keeps the historical untagged names, so
        # caches tracked in the repo stay valid
        assert _space_tag(SearchSpace()) == ""

    def test_use_cache_false_ignores_cache(self, tmp_path, monkeypatch,
                                           tiny_space, tiny_latency_model):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        fit_latency_predictor(tiny_space, tiny_latency_model,
                              seed=10, num_samples=300)
        cache_dir = os.path.join(str(tmp_path), "cache")
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)]
        with open(path, "wb") as handle:
            handle.write(b"garbage")  # would raise if the cache were read
        pred, rmse = fit_latency_predictor(tiny_space, tiny_latency_model,
                                           seed=10, num_samples=300,
                                           use_cache=False)
        assert rmse > 0.0
