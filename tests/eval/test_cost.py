"""Tests of the search-cost accounting (Table 1)."""

import pytest

from repro.eval import cost


class TestPaperConstants:
    def test_lightnas_is_cheapest_differentiable(self):
        assert cost.PAPER_REPORTED_GPU_HOURS["lightnas"] == 10.0
        for method in ("fbnet", "proxylessnas", "darts"):
            assert (cost.PAPER_REPORTED_GPU_HOURS[method]
                    > cost.PAPER_REPORTED_GPU_HOURS["lightnas"])

    def test_rl_is_most_expensive(self):
        assert cost.PAPER_REPORTED_GPU_HOURS["mnasnet-rl"] == max(
            cost.PAPER_REPORTED_GPU_HOURS.values())

    def test_implicit_runs(self):
        assert cost.IMPLICIT_RUNS["lightnas"] == 1
        assert cost.IMPLICIT_RUNS["fbnet"] == 10


class TestSimulatedCost:
    def test_lightnas_calibration_anchor(self):
        """A full paper run (4500 steps × 21 paths) costs 10 GPU hours."""
        hours = cost.simulated_gpu_hours("lightnas", 4500, 21)
        assert hours == pytest.approx(10.0)

    def test_multipath_costs_k_times_more(self):
        single = cost.simulated_gpu_hours("lightnas", 1000, 21)
        multi = cost.simulated_gpu_hours("fbnet", 1000, 21 * 7)
        assert multi == pytest.approx(7 * single)

    def test_trained_samples_term(self):
        hours = cost.simulated_gpu_hours("mnasnet-rl", 0, 0, trained_samples=8000)
        assert hours == pytest.approx(40_000.0)

    def test_amortised_term(self):
        hours = cost.simulated_gpu_hours("ofa-evolution", 0, 0, amortised=1200.0)
        assert hours == pytest.approx(1200.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            cost.simulated_gpu_hours("x", -1, 5)


class TestTotalDesignCost:
    def test_lightnas_total_equals_explicit(self):
        mc = cost.total_design_cost("lightnas")
        assert mc.total_gpu_hours == 10.0

    def test_fbnet_pays_sweep(self):
        mc = cost.total_design_cost("fbnet")
        assert mc.total_gpu_hours == 216.0 * 10

    def test_explicit_override(self):
        mc = cost.total_design_cost("fbnet", explicit_gpu_hours=50.0)
        assert mc.total_gpu_hours == 500.0

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            cost.total_design_cost("alphafold")

    def test_one_time_search_is_cheapest_total(self):
        """The paper's headline: counting implicit λ-sweeps, LightNAS's total
        design cost beats every baseline by an order of magnitude."""
        lightnas = cost.total_design_cost("lightnas").total_gpu_hours
        for method in ("darts", "fbnet", "proxylessnas", "ofa-evolution",
                       "mnasnet-rl", "unas"):
            assert cost.total_design_cost(method).total_gpu_hours > 10 * lightnas
