"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


TINY_ARCH = "1,2,3,4"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search"])

    def test_metric_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--target", "24",
                                       "--metric", "watts"])


class TestInfo:
    def test_full_space(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "5.59e+17" in out
        assert "jetson-agx-xavier-maxn" in out

    def test_tiny_space(self, capsys):
        assert main(["info", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "4" in out


class TestPredict:
    def test_tiny_arch(self, capsys):
        assert main(["predict", "--tiny", "--arch", TINY_ARCH]) == 0
        out = capsys.readouterr().out
        assert "latency (model)" in out
        assert "multi-adds" in out

    def test_malformed_arch(self):
        with pytest.raises(SystemExit):
            main(["predict", "--tiny", "--arch", "1,banana"])

    def test_wrong_length_arch(self):
        with pytest.raises(SystemExit):
            main(["predict", "--tiny", "--arch", "1,2"])


class TestEvaluate:
    def test_emits_json_row(self, capsys):
        assert main(["evaluate", "--tiny", "--arch", TINY_ARCH,
                     "--name", "probe"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "probe"
        assert 0 < payload["top1"] <= 100


class TestSearch:
    def test_tiny_search_outputs_json(self, capsys, tmp_path):
        output = tmp_path / "result.json"
        assert main(["search", "--tiny", "--target", "2.3", "--seed", "0",
                     "--output", str(output)]) == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        assert "architecture" in stdout_payload
        assert abs(stdout_payload["true_latency_ms"] - 2.3) < 0.3
        with open(output) as handle:
            assert json.load(handle) == stdout_payload
