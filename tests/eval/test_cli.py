"""Tests of the command-line interface."""

import glob
import json
import os

import pytest

from repro.cli import build_parser, main


TINY_ARCH = "1,2,3,4"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search"])

    def test_metric_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--target", "24",
                                       "--metric", "watts"])


class TestInfo:
    def test_full_space(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "5.59e+17" in out
        assert "jetson-agx-xavier-maxn" in out

    def test_tiny_space(self, capsys):
        assert main(["info", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "4" in out


class TestPredict:
    def test_tiny_arch(self, capsys):
        assert main(["predict", "--tiny", "--arch", TINY_ARCH]) == 0
        out = capsys.readouterr().out
        assert "latency (model)" in out
        assert "multi-adds" in out

    def test_malformed_arch(self):
        with pytest.raises(SystemExit):
            main(["predict", "--tiny", "--arch", "1,banana"])

    def test_wrong_length_arch(self):
        with pytest.raises(SystemExit):
            main(["predict", "--tiny", "--arch", "1,2"])


class TestEvaluate:
    def test_emits_json_row(self, capsys):
        assert main(["evaluate", "--tiny", "--arch", TINY_ARCH,
                     "--name", "probe"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "probe"
        assert 0 < payload["top1"] <= 100


class TestSearch:
    def test_tiny_search_outputs_json(self, capsys, tmp_path):
        output = tmp_path / "result.json"
        assert main(["search", "--tiny", "--target", "2.3", "--seed", "0",
                     "--output", str(output)]) == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        assert "architecture" in stdout_payload
        assert abs(stdout_payload["true_latency_ms"] - 2.3) < 0.3
        with open(output) as handle:
            assert json.load(handle) == stdout_payload

    def test_tiny_honors_epochs(self, capsys):
        """Regression: --tiny used to silently ignore --epochs."""
        assert main(["search", "--tiny", "--target", "2.3", "--seed", "0",
                     "--epochs", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # tiny config: 4 α steps per epoch, 2 warmup epochs
        assert payload["num_search_steps"] == (3 - 2) * 4

    def test_tiny_rejects_unsupported_metric(self):
        """Regression: --tiny used to silently ignore --metric."""
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "--tiny", "--target", "2.3", "--metric", "energy"])
        assert "--metric latency only" in str(excinfo.value)


class TestRuntimeFlags:
    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "--tiny", "--target", "2.3", "--resume"])
        assert "--checkpoint-dir" in str(excinfo.value)

    def test_checkpoint_resume_trace_round_trip(self, capsys, tmp_path):
        ckpt_dir = str(tmp_path / "ckpts")
        trace = str(tmp_path / "run.jsonl")
        args = ["search", "--tiny", "--target", "2.3", "--seed", "0",
                "--epochs", "3", "--checkpoint-dir", ckpt_dir,
                "--checkpoint-every", "1", "--trace", trace]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert len(glob.glob(os.path.join(ckpt_dir, "*.npz"))) == 3

        # drop the newest checkpoint so the resume really replays an epoch
        os.remove(sorted(glob.glob(os.path.join(ckpt_dir, "*.npz")))[-1])
        assert main(args + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "resuming from" in captured.err
        assert json.loads(captured.out) == first

        assert main(["trace-summary", trace]) == 0
        summary = capsys.readouterr().out
        assert "lightnas" in summary
        assert "resumed" in summary
