"""Tests of the command-line interface."""

import glob
import json
import os

import pytest

from repro.cli import build_parser, main


TINY_ARCH = "1,2,3,4"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search"])

    def test_metric_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--target", "24",
                                       "--metric", "watts"])


class TestInfo:
    def test_full_space(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "5.59e+17" in out
        assert "jetson-agx-xavier-maxn" in out

    def test_tiny_space(self, capsys):
        assert main(["info", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "4" in out


class TestPredict:
    def test_tiny_arch(self, capsys):
        assert main(["predict", "--tiny", "--arch", TINY_ARCH]) == 0
        out = capsys.readouterr().out
        assert "latency (model)" in out
        assert "multi-adds" in out

    def test_malformed_arch(self):
        with pytest.raises(SystemExit):
            main(["predict", "--tiny", "--arch", "1,banana"])

    def test_wrong_length_arch(self):
        with pytest.raises(SystemExit):
            main(["predict", "--tiny", "--arch", "1,2"])


class TestEvaluate:
    def test_emits_json_row(self, capsys):
        assert main(["evaluate", "--tiny", "--arch", TINY_ARCH,
                     "--name", "probe"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "probe"
        assert 0 < payload["top1"] <= 100


class TestSearch:
    def test_tiny_search_outputs_json(self, capsys, tmp_path):
        output = tmp_path / "result.json"
        assert main(["search", "--tiny", "--target", "2.3", "--seed", "0",
                     "--output", str(output)]) == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        assert "architecture" in stdout_payload
        assert abs(stdout_payload["true_latency_ms"] - 2.3) < 0.3
        with open(output) as handle:
            assert json.load(handle) == stdout_payload

    def test_tiny_honors_epochs(self, capsys):
        """Regression: --tiny used to silently ignore --epochs."""
        assert main(["search", "--tiny", "--target", "2.3", "--seed", "0",
                     "--epochs", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # tiny config: 4 α steps per epoch, 2 warmup epochs
        assert payload["num_search_steps"] == (3 - 2) * 4

    def test_tiny_rejects_unsupported_metric(self):
        """Regression: --tiny used to silently ignore --metric."""
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "--tiny", "--target", "2.3", "--metric", "energy"])
        assert "--metric latency only" in str(excinfo.value)


class TestSweep:
    def test_resume_requires_checkpoint_dir(self):
        """Regression: sweep --resume without --checkpoint-dir used to be
        silently ignored (the flag was only read inside the checkpoint-dir
        branch) — it must abort loudly like search does."""
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--tiny", "--targets", "2.0,2.5", "--resume"])
        assert "--checkpoint-dir" in str(excinfo.value)

    def test_jobs_matches_sequential_and_delimits_journal(self, capsys,
                                                          tmp_path):
        base = ["sweep", "--tiny", "--targets", "2.0,2.5", "--seed", "0",
                "--epochs", "20"]
        assert main(base) == 0
        sequential = capsys.readouterr().out

        trace = str(tmp_path / "sweep.jsonl")
        assert main(base + ["--jobs", "2", "--trace", trace]) == 0
        captured = capsys.readouterr()
        assert captured.out == sequential  # bit-identical table
        assert "fleet:" in captured.err

        events = [json.loads(line) for line in open(trace)]
        headers = [e for e in events if e["event"] == "task_header"]
        assert [h["name"] for h in headers] == ["target_2", "target_2.5"]
        assert [h["target"] for h in headers] == [2.0, 2.5]

        assert main(["trace-summary", trace]) == 0
        summary = capsys.readouterr().out
        assert "run fleet" in summary
        assert "fleet task" in summary

    def test_sequential_journal_delimits_targets(self, capsys, tmp_path):
        """Regression: one shared sweep journal had no per-target
        delimiter, so trace-summary could not attribute epochs."""
        trace = str(tmp_path / "seq.jsonl")
        assert main(["sweep", "--tiny", "--targets", "2.0,2.5",
                     "--epochs", "20", "--trace", trace]) == 0
        capsys.readouterr()
        events = [json.loads(line) for line in open(trace)]
        headers = [e for e in events if e["event"] == "task_header"]
        assert [h["target"] for h in headers] == [2.0, 2.5]


class TestStability:
    def test_grid_runs_and_reports(self, capsys, tmp_path):
        output = tmp_path / "stability.json"
        assert main(["stability", "--tiny", "--targets", "2.0",
                     "--seeds", "0,1", "--epochs", "20", "--jobs", "2",
                     "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "multi-seed stability" in out
        with open(output) as handle:
            payload = json.load(handle)
        assert payload["seeds"] == [0, 1]
        assert len(payload["runs"]) == 2
        assert {run["seed"] for run in payload["runs"]} == {0, 1}

    def test_rejects_duplicate_seeds(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["stability", "--tiny", "--targets", "2.0",
                  "--seeds", "0,0"])
        assert "duplicate" in str(excinfo.value)


class TestFleetCalibrate:
    def test_writes_transfer_payload(self, capsys, tmp_path):
        output = tmp_path / "maps.json"
        assert main(["fleet", "calibrate", "--tiny",
                     "--fleet", "phone=2", "--calibration", "30",
                     "--jobs", "2", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "proxy transfer maps" in out
        with open(output) as handle:
            payload = json.load(handle)
        assert set(payload["maps"]) == {"phone-00", "phone-01"}


class TestRuntimeFlags:
    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "--tiny", "--target", "2.3", "--resume"])
        assert "--checkpoint-dir" in str(excinfo.value)

    def test_checkpoint_resume_trace_round_trip(self, capsys, tmp_path):
        ckpt_dir = str(tmp_path / "ckpts")
        trace = str(tmp_path / "run.jsonl")
        args = ["search", "--tiny", "--target", "2.3", "--seed", "0",
                "--epochs", "3", "--checkpoint-dir", ckpt_dir,
                "--checkpoint-every", "1", "--trace", trace]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert len(glob.glob(os.path.join(ckpt_dir, "*.npz"))) == 3

        # drop the newest checkpoint so the resume really replays an epoch
        os.remove(sorted(glob.glob(os.path.join(ckpt_dir, "*.npz")))[-1])
        assert main(args + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "resuming from" in captured.err
        assert json.loads(captured.out) == first

        assert main(["trace-summary", trace]) == 0
        summary = capsys.readouterr().out
        assert "lightnas" in summary
        assert "resumed" in summary
