"""Segment-backed storage: compaction, mmap boot, tail replay, parity."""

import json
import os

import numpy as np
import pytest

from repro.archive.segments import (
    discard_segments,
    load_current_segment,
    segment_root_for,
)
from repro.archive.store import ArchitectureArchive, ArchiveError

L, K = 4, 7  # tiny-space geometry used throughout


def make_archive(tmp_path, name="arc.jsonl", **kwargs):
    return ArchitectureArchive(str(tmp_path / name), num_layers=L,
                               num_operators=K, **kwargs)


def fill(archive, n, seed=0, device="xavier"):
    rng = np.random.default_rng(seed)
    ops = rng.integers(0, K, size=(n, L))
    archive.add_population(
        ops, device=device,
        latency_ms=rng.uniform(1, 50, n),
        energy_mj=rng.uniform(10, 900, n),
        macs_m=rng.uniform(50, 500, n),
        score=rng.uniform(40, 80, n), engine="seg-test", seed=seed)
    return ops


def assert_index_equal(a, b):
    assert a.keys == b.keys
    assert a.devices == b.devices
    np.testing.assert_array_equal(np.asarray(a.ops), np.asarray(b.ops))
    np.testing.assert_array_equal(np.asarray(a.score), np.asarray(b.score))
    np.testing.assert_array_equal(np.asarray(a.macs_m), np.asarray(b.macs_m))
    np.testing.assert_array_equal(np.asarray(a.params_m),
                                  np.asarray(b.params_m))
    np.testing.assert_array_equal(np.asarray(a.cost), np.asarray(b.cost))


class TestCompactAndBoot:
    def test_compact_then_reopen_boots_from_segment(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 40)
        arc.compact()
        arc.close()
        reopened = make_archive(tmp_path)
        assert reopened.boot["mode"] == "segment"
        assert reopened.boot["tail_records"] == 0
        assert len(reopened) == len(reopened.index())
        reopened.close()

    def test_segment_boot_index_is_bit_identical_to_log_replay(self,
                                                               tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 60)
        arc.compact()
        arc.close()
        via_log = make_archive(tmp_path, use_segments=False)
        via_segment = make_archive(tmp_path)
        assert via_log.boot["mode"] == "log-replay"
        assert via_segment.boot["mode"] == "segment"
        assert_index_equal(via_log.index(), via_segment.index())
        via_log.close()
        via_segment.close()

    def test_wal_tail_after_compaction_is_replayed(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 30)
        arc.compact()
        arc.add((6, 6, 6, 6), device="xavier", latency_ms=2.5, score=79.0)
        arc.close()
        reopened = make_archive(tmp_path)
        assert reopened.boot["mode"] == "segment"
        assert reopened.boot["tail_records"] == 1
        assert (6, 6, 6, 6) in reopened
        record = reopened.get((6, 6, 6, 6))
        assert record.devices["xavier"]["latency_ms"] == 2.5
        assert_index_equal(make_archive(tmp_path,
                                        use_segments=False).index(),
                           reopened.index())
        reopened.close()

    def test_tail_merge_into_segment_row(self, tmp_path):
        """A post-compaction append to an archived genotype merges fully."""
        arc = make_archive(tmp_path)
        arc.add((1, 2, 3, 0), device="xavier", latency_ms=5.0, score=60.0)
        arc.compact()
        arc.add((1, 2, 3, 0), device="edge-nano", latency_ms=9.0, score=61.0)
        arc.close()
        reopened = make_archive(tmp_path)
        assert len(reopened) == 1
        # index cells reflect the merge without materializing records
        index = reopened.index()
        assert index.devices == ("edge-nano", "xavier")
        assert index.device_column("xavier", "latency_ms")[0] == 5.0
        assert index.device_column("edge-nano", "latency_ms")[0] == 9.0
        assert index.score[0] == 61.0
        # lazy record materialization sees both writes too
        record = reopened.get((1, 2, 3, 0))
        assert record.devices == {"xavier": {"latency_ms": 5.0},
                                  "edge-nano": {"latency_ms": 9.0}}
        assert record.score == 61.0
        reopened.close()

    def test_tail_device_not_in_segment_widens_sorted(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 10, device="xavier")
        arc.compact()
        arc.add((0, 1, 2, 3), device="a-new-device", energy_mj=7.0)
        arc.close()
        reopened = make_archive(tmp_path)
        reference = make_archive(tmp_path, use_segments=False)
        assert reopened.index().devices == reference.index().devices
        assert_index_equal(reference.index(), reopened.index())
        reopened.close()
        reference.close()

    def test_records_parity_after_segment_boot(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 25)
        arc.add((0, 0, 0, 0), extras={"pred:abc": 1.25},
                config_fingerprint="fp")
        arc.compact()
        arc.close()
        via_log = make_archive(tmp_path, use_segments=False)
        via_segment = make_archive(tmp_path)
        assert list(via_log.records()) == list(via_segment.records())
        via_log.close()
        via_segment.close()

    def test_appends_after_segment_boot_extend_the_snapshot(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 12)
        arc.compact()
        arc.close()
        reopened = make_archive(tmp_path)
        before = reopened.index()
        reopened.add((5, 5, 5, 5), device="xavier", latency_ms=1.0)
        after = reopened.index()
        assert after is not before
        assert len(after) == len(before) + 1
        # the earlier snapshot is immutable — readers holding it are safe
        assert len(before) == 12 or len(before) == len(set(before.keys))
        reopened.close()

    def test_empty_archive_compacts_and_reopens(self, tmp_path):
        arc = make_archive(tmp_path)
        arc.compact()
        arc.close()
        reopened = make_archive(tmp_path)
        assert reopened.boot["mode"] == "segment"
        assert len(reopened) == 0
        reopened.close()

    def test_recompaction_garbage_collects_old_segments(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 8, seed=1)
        arc.compact()
        fill(arc, 8, seed=2)
        arc.compact()
        root = segment_root_for(arc.path)
        segments = [d for d in os.listdir(root) if d.startswith("seg-")]
        assert segments == ["seg-0000000002"]
        arc.close()

    def test_discard_segments_forces_log_replay(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 8)
        arc.compact()
        arc.close()
        discard_segments(str(tmp_path / "arc.jsonl"))
        reopened = make_archive(tmp_path)
        assert reopened.boot["mode"] == "log-replay"
        reopened.close()


class TestLoudFailures:
    def compacted(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 10)
        arc.compact()
        arc.close()
        return arc.path

    def test_corrupt_current_pointer_raises(self, tmp_path):
        path = self.compacted(tmp_path)
        current = os.path.join(segment_root_for(path), "CURRENT")
        with open(current, "w", encoding="utf-8") as handle:
            handle.write("deadbeef {broken\n")
        with pytest.raises(ArchiveError, match="CRC"):
            ArchitectureArchive(path, num_layers=L, num_operators=K)

    def test_corrupt_manifest_raises(self, tmp_path):
        path = self.compacted(tmp_path)
        root = segment_root_for(path)
        seg = [d for d in os.listdir(root) if d.startswith("seg-")][0]
        manifest = os.path.join(root, seg, "manifest.json")
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write("not a manifest\n")
        with pytest.raises(ArchiveError):
            ArchitectureArchive(path, num_layers=L, num_operators=K)

    def test_missing_array_raises(self, tmp_path):
        path = self.compacted(tmp_path)
        root = segment_root_for(path)
        seg = [d for d in os.listdir(root) if d.startswith("seg-")][0]
        os.unlink(os.path.join(root, seg, "cost.npy"))
        with pytest.raises(ArchiveError, match="recompact"):
            ArchitectureArchive(path, num_layers=L, num_operators=K)

    def test_rewritten_wal_is_detected(self, tmp_path):
        """A segment must never be served against a log it doesn't match."""
        path = self.compacted(tmp_path)
        with open(path, "r", encoding="utf-8", newline="\n") as handle:
            lines = handle.read().split("\n")
        # drop a record line: same length ordering, different content
        del lines[3]
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write("\n".join(lines))
        with pytest.raises(ArchiveError, match="recompact"):
            ArchitectureArchive(path, num_layers=L, num_operators=K)

    def test_truncated_wal_is_detected(self, tmp_path):
        path = self.compacted(tmp_path)
        with open(path, "r", encoding="utf-8", newline="\n") as handle:
            lines = handle.read().split("\n")
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write("\n".join(lines[:4]) + "\n")
        with pytest.raises(ArchiveError, match="recompact"):
            ArchitectureArchive(path, num_layers=L, num_operators=K)

    def test_damaged_aux_payloads_fail_on_materialization(self, tmp_path):
        path = self.compacted(tmp_path)
        root = segment_root_for(path)
        seg = [d for d in os.listdir(root) if d.startswith("seg-")][0]
        aux = os.path.join(root, seg, "aux.jsonl")
        with open(aux, "r", encoding="utf-8", newline="\n") as handle:
            lines = handle.read().split("\n")
        lines[2], lines[3] = lines[3], lines[2]   # break key alignment
        with open(aux, "w", encoding="utf-8", newline="\n") as handle:
            handle.write("\n".join(lines))
        arc = ArchitectureArchive(path, num_layers=L, num_operators=K)
        arc.index()                               # the array path still works
        with pytest.raises(ArchiveError, match="recompact"):
            list(arc.records())
        arc.close()

    def test_load_current_segment_absent_is_none(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 3)
        arc.close()
        assert load_current_segment(arc.path) is None


class TestReadOnly:
    def test_read_only_serves_but_rejects_writes(self, tmp_path):
        arc = make_archive(tmp_path)
        ops = fill(arc, 10)
        arc.compact()
        arc.close()
        ro = make_archive(tmp_path, read_only=True)
        assert ro.boot["mode"] == "segment"
        assert len(ro.index()) == len(ro)
        assert ro.get(ops[0]) is not None
        with pytest.raises(ArchiveError, match="read-only"):
            ro.add((0, 0, 0, 0), macs_m=1.0)
        with pytest.raises(ArchiveError, match="read-only"):
            ro.add_population(np.zeros((1, L), dtype=np.int64))
        with pytest.raises(ArchiveError, match="read-only"):
            ro.compact()
        ro.flush()   # no-op, must not raise
        assert ro.stats()["read_only"] is True
        ro.close()

    def test_read_only_missing_file_raises(self, tmp_path):
        with pytest.raises(ArchiveError, match="read-only"):
            make_archive(tmp_path, name="missing.jsonl", read_only=True)

    def test_read_only_snapshot_arrays_are_immutable(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 5)
        arc.compact()
        arc.close()
        ro = make_archive(tmp_path, read_only=True)
        index = ro.index()
        with pytest.raises(ValueError):
            index.score[0] = 1.0
        ro.close()


class TestCompactionIsCrashSafe:
    def test_half_written_staging_directory_is_ignored_and_collected(
            self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 6)
        arc.compact()
        root = segment_root_for(arc.path)
        litter = os.path.join(root, "seg-0000000009.tmp-dead")
        os.makedirs(litter)
        with open(os.path.join(litter, "ops.npy"), "wb") as handle:
            handle.write(b"partial")
        arc.close()
        reopened = make_archive(tmp_path)          # staging dir is not CURRENT
        assert reopened.boot["mode"] == "segment"
        reopened.compact()                          # recompaction GCs it
        assert not os.path.exists(litter)
        reopened.close()

    def test_current_survives_json_round_trip(self, tmp_path):
        arc = make_archive(tmp_path)
        fill(arc, 4)
        segment = arc.compact()
        arc.close()
        current = os.path.join(segment_root_for(arc.path), "CURRENT")
        with open(current, encoding="utf-8") as handle:
            payload = json.loads(handle.read().split(" ", 1)[1])
        assert payload["segment"] == os.path.basename(segment)
