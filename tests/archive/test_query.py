"""Query engine vs brute-force references on randomized archives."""

import numpy as np
import pytest

from repro.archive.query import (
    describe_rows,
    hamming_neighbors,
    pareto_rows,
    top_k,
)
from repro.archive.store import ArchitectureArchive

L, K = 4, 7


@pytest.fixture
def indexed(tmp_path):
    """An archive index with two devices, NaN holes, and random scores."""
    rng = np.random.default_rng(42)
    arc = ArchitectureArchive(str(tmp_path / "arc.jsonl"),
                              num_layers=L, num_operators=K)
    n = 60
    ops = rng.integers(0, K, size=(n, L))
    seen = set()
    for i, row in enumerate(map(tuple, ops.tolist())):
        if row in seen:
            continue
        seen.add(row)
        kwargs = {}
        if i % 3 != 0:  # leave holes: some rows have no xavier record
            kwargs = dict(device="xavier",
                          latency_ms=float(rng.uniform(10, 40)),
                          energy_mj=float(rng.uniform(100, 400)))
        arc.add(row, macs_m=float(rng.uniform(50, 600)),
                score=(None if i % 5 == 0 else float(rng.uniform(60, 76))),
                **kwargs)
        if i % 4 == 0:
            arc.add(row, device="nano",
                    latency_ms=float(rng.uniform(30, 90)))
    index = arc.index()
    arc.close()
    return index


class TestTopK:
    def test_matches_brute_force_score(self, indexed):
        rows = top_k(indexed, 5, objective="score")
        finite = np.nonzero(np.isfinite(indexed.score))[0]
        expected = finite[np.argsort(-indexed.score[finite],
                                     kind="stable")][:5]
        np.testing.assert_array_equal(rows, expected)

    def test_matches_brute_force_cost(self, indexed):
        rows = top_k(indexed, 7, objective="latency_ms", device="xavier")
        col = indexed.device_column("xavier", "latency_ms")
        finite = np.nonzero(np.isfinite(col))[0]
        expected = finite[np.argsort(col[finite], kind="stable")][:7]
        np.testing.assert_array_equal(rows, expected)

    def test_budgets_filter(self, indexed):
        budget = {"latency_ms": 25.0, "macs_m": 400.0}
        rows = top_k(indexed, 50, objective="score", device="xavier",
                     budgets=budget)
        lat = indexed.device_column("xavier", "latency_ms")
        assert len(rows) > 0
        for row in rows:
            assert lat[row] <= 25.0
            assert indexed.macs_m[row] <= 400.0
            assert np.isfinite(indexed.score[row])
        # every feasible row is returned when k is large enough
        feasible = (np.isfinite(indexed.score) & np.isfinite(lat)
                    & (lat <= 25.0) & (indexed.macs_m <= 400.0))
        assert len(rows) == int(feasible.sum())

    def test_unknown_metric_and_device_raise(self, indexed):
        with pytest.raises(ValueError, match="unknown metric"):
            top_k(indexed, 3, objective="wibble")
        with pytest.raises(ValueError, match="per-device"):
            top_k(indexed, 3, objective="latency_ms")  # no device
        with pytest.raises(ValueError, match="no records"):
            top_k(indexed, 3, objective="latency_ms", device="tpu")
        with pytest.raises(ValueError):
            top_k(indexed, -1)

    def test_k_zero_and_k_beyond_feasible(self, indexed):
        assert len(top_k(indexed, 0)) == 0
        rows = top_k(indexed, 10_000, objective="score")
        assert len(rows) == int(np.isfinite(indexed.score).sum())


class TestPareto:
    def test_matches_brute_force_frontier(self, indexed):
        rows = pareto_rows(indexed, device="xavier")
        costs = indexed.device_column("xavier", "latency_ms")
        scores = indexed.score
        valid = np.nonzero(np.isfinite(costs) & np.isfinite(scores))[0]
        # O(n²) reference: a row survives iff nothing is <= cost and
        # >= score with at least one strict inequality
        expected = []
        for i in valid:
            dominated = any(
                (costs[j] <= costs[i] and scores[j] >= scores[i])
                and (costs[j] < costs[i] or scores[j] > scores[i])
                for j in valid)
            if not dominated:
                expected.append(i)
        assert sorted(rows.tolist()) == sorted(expected)
        # sorted by ascending cost
        assert np.all(np.diff(costs[rows]) >= 0)

    def test_empty_when_no_joint_coverage(self, indexed):
        # nano rows exist but none of them carry an energy value
        rows = pareto_rows(indexed, device="nano", cost_metric="energy_mj")
        assert len(rows) == 0


class TestHamming:
    def test_matches_brute_force(self, indexed):
        rng = np.random.default_rng(5)
        query = rng.integers(0, K, size=L)
        rows, distances = hamming_neighbors(indexed, query, 8)
        reference = (indexed.ops != query[None, :]).sum(axis=1)
        expected = np.argsort(reference, kind="stable")[:8]
        np.testing.assert_array_equal(rows, expected)
        np.testing.assert_array_equal(distances, reference[expected])

    def test_distance_counts_differing_layers(self, indexed):
        row = indexed.ops[3]
        rows, distances = hamming_neighbors(indexed, row, 1)
        assert rows[0] == 3 and distances[0] == 0
        mutated = row.copy()
        mutated[0] = (mutated[0] + 1) % K
        rows, distances = hamming_neighbors(indexed, mutated, len(indexed))
        assert distances[list(rows).index(3)] == 1

    def test_wrong_length_query_raises(self, indexed):
        with pytest.raises(ValueError, match="layers"):
            hamming_neighbors(indexed, [0] * (L + 1), 3)


class TestDescribe:
    def test_rows_are_json_ready(self, indexed):
        import json
        rows = top_k(indexed, 3, objective="score")
        described = describe_rows(indexed, rows)
        payload = json.loads(json.dumps(described))
        assert len(payload) == 3
        for entry in payload:
            assert len(entry["op_indices"]) == L
            assert entry["key"] == indexed.keys[rows[len(payload) - 3]] or True
            assert "score" in entry  # finite by construction of top-k

    def test_device_filter(self, indexed):
        rows = np.arange(len(indexed))
        only_xavier = describe_rows(indexed, rows, "xavier")
        for entry in only_xavier:
            assert set(entry.get("devices", {})) <= {"xavier"}
