"""Load-shaped tests: a live server under mixed concurrent traffic.

These are the serving-stack hardening tests: many client threads hammer
``/predict`` + ``/query`` + ``/stats`` while an in-process writer keeps
appending to the same archive, and every response must be a well-formed
JSON 2xx/4xx — never a 5xx, never a reset connection.  A second group
checks that cursor-walking the paginated endpoints reassembles exactly
the unpaginated result.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.archive.service import ArchiveService, make_server
from repro.archive.store import ArchitectureArchive
from repro.predictor.analytic import AnalyticCostPredictor


@pytest.fixture(scope="module")
def analytic(tiny_space):
    return AnalyticCostPredictor(tiny_space, "macs_m")


@pytest.fixture
def live(tmp_path, tiny_space, analytic):
    """A live server plus the writable archive behind it."""
    rng = np.random.default_rng(17)
    archive = ArchitectureArchive(str(tmp_path / "arc.jsonl"),
                                  space=tiny_space)
    ops = tiny_space.sample_indices(100, rng)
    archive.add_population(
        ops, device="xavier",
        latency_ms=rng.uniform(5, 50, size=100),
        macs_m=analytic.predict_population(ops),
        score=rng.uniform(55, 80, size=100), engine="fixture")
    service = ArchiveService(tiny_space, analytic, metric_name="macs_m",
                             device_name="xavier", archive=archive,
                             window_s=0.002)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, archive, ops, service
    httpd.shutdown()
    httpd.server_close()
    service.close()
    thread.join(timeout=5)


def request(base, path, payload=None):
    """One HTTP call; returns (status, parsed body) and never raises for
    HTTP-level errors — transport failures (resets) do propagate."""
    if payload is None:
        req = urllib.request.Request(base + path)
    else:
        req = urllib.request.Request(
            base + path, json.dumps(payload).encode("utf-8"),
            {"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestMixedTrafficUnderWrites:
    def test_no_5xx_or_resets_while_writer_appends(self, live, tiny_space):
        base, archive, ops, service = live
        clients = 8
        per_client = 12
        errors = []
        statuses = []
        lock = threading.Lock()
        barrier = threading.Barrier(clients + 1)

        def client(i):
            rng = np.random.default_rng(1000 + i)
            barrier.wait()
            for j in range(per_client):
                kind = (i + j) % 3
                try:
                    if kind == 0:
                        batch = tiny_space.sample_indices(4, rng)
                        status, body = request(
                            base, "/predict", {"archs": batch.tolist()})
                        if status == 200:
                            assert body["count"] == 4
                    elif kind == 1:
                        status, body = request(
                            base, "/query", {"k": 10, "limit": 5})
                        if status == 200:
                            assert body["count"] <= 5
                    else:
                        status, body = request(base, "/stats")
                        if status == 200:
                            assert body["archive"]["records"] >= 100
                    with lock:
                        statuses.append(status)
                except Exception as exc:   # resets, bad JSON, torn reads
                    with lock:
                        errors.append(repr(exc))

        def writer():
            rng = np.random.default_rng(9)
            barrier.wait()
            for _ in range(60):
                arch = tiny_space.sample_indices(1, rng)[0]
                archive.add(arch, device="edge-nano",
                            latency_ms=float(rng.uniform(5, 50)),
                            score=float(rng.uniform(55, 80)))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        writer_thread = threading.Thread(target=writer)
        for t in threads + [writer_thread]:
            t.start()
        for t in threads + [writer_thread]:
            t.join()

        assert errors == []
        assert len(statuses) == clients * per_client
        assert all(status < 500 for status in statuses), statuses
        # under concurrent load the batcher must actually coalesce
        stats = service.batcher.stats()
        assert stats["predict_batches"] <= stats["predict_requests"]
        assert stats["predict_requests"] > 0

    def test_queries_see_monotonically_growing_archive(self, live,
                                                       tiny_space):
        base, archive, _, _ = live
        totals = []
        stop = threading.Event()

        def poll():
            while not stop.is_set():
                status, body = request(base, "/query", {"k": 10_000})
                assert status == 200
                totals.append(body["total"])

        poller = threading.Thread(target=poll)
        poller.start()
        rng = np.random.default_rng(23)
        for _ in range(40):
            archive.add(tiny_space.sample_indices(1, rng)[0],
                        score=float(rng.uniform(55, 80)))
        stop.set()
        poller.join()
        assert totals == sorted(totals)   # snapshots never go backwards


def walk(base, path, payload, limit):
    """Cursor-walk a paginated endpoint, returning all result rows."""
    rows, offset = [], 0
    while True:
        status, body = request(base, path,
                               {**payload, "offset": offset, "limit": limit})
        assert status == 200, body
        assert body["count"] == len(body["results"]) <= limit
        assert body["offset"] == offset
        rows.extend(body["results"])
        if body["next"] is None:
            assert len(rows) == body["total"]
            return rows
        assert body["next"] == offset + limit
        offset = body["next"]


class TestPaginationRoundTrip:
    def test_query_cursor_walk_reassembles_full_result(self, live):
        base = live[0]
        status, full = request(base, "/query", {"k": 100})
        assert status == 200 and full["count"] > 90
        pages = walk(base, "/query", {"k": 100}, limit=7)
        assert pages == full["results"]

    def test_pareto_cursor_walk(self, live):
        base = live[0]
        status, full = request(base, "/pareto", {"device": "xavier"})
        assert status == 200 and full["count"] > 1
        pages = walk(base, "/pareto", {"device": "xavier"}, limit=2)
        assert pages == full["results"]

    def test_nearest_cursor_walk_keeps_distances(self, live):
        base, _, ops, _ = live
        payload = {"arch": ops[0].tolist(), "k": 50}
        status, full = request(base, "/nearest", payload)
        assert status == 200 and full["count"] == 50
        pages = walk(base, "/nearest", payload, limit=9)
        assert pages == full["results"]
        distances = [entry["hamming_layers"] for entry in pages]
        assert distances == sorted(distances)

    def test_default_page_limit_is_applied(self, tmp_path, tiny_space,
                                           analytic):
        rng = np.random.default_rng(29)
        archive = ArchitectureArchive(str(tmp_path / "arc2.jsonl"),
                                      space=tiny_space)
        archive.add_population(tiny_space.sample_indices(40, rng),
                               score=rng.uniform(50, 80, size=40))
        service = ArchiveService(tiny_space, analytic, window_s=0.0,
                                 archive=archive, default_page_limit=10)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            status, body = request(base, "/query", {"k": 40})
            assert status == 200
            assert body["count"] == 10 and body["next"] == 10
            # an explicit limit in the body overrides the server default
            status, body = request(base, "/query", {"k": 40, "limit": 25})
            assert status == 200 and body["count"] == 25
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()
            thread.join(timeout=5)
