"""EvalCache: subset parity, memoization, and warm-archive determinism.

The warm-rerun test is the acceptance criterion of the archive subsystem:
a seeded evolution run against a populated archive must return a
bit-identical :class:`SearchResult` while answering >0 evaluations from
cache (visible in the journal's ``run_end`` event).
"""

import numpy as np
import pytest

from repro.archive.cache import EvalCache, model_fingerprint, \
    oracle_fingerprint
from repro.archive.store import ArchitectureArchive
from repro.baselines.evolution import EvolutionConfig, EvolutionSearch
from repro.baselines.random_search import RandomSearch, RandomSearchConfig
from repro.baselines.rl_search import RLSearch, RLSearchConfig
from repro.predictor.dataset import collect_energy_dataset, \
    collect_latency_dataset
from repro.proxy.accuracy_model import AccuracyOracle
from repro.runtime.telemetry import RunJournal, read_journal
from repro.search_space.space import Architecture


class TestSubsetParity:
    def test_predict_population_rows_independent_of_batch(
            self, tiny_space, tiny_predictor):
        """The precondition the whole cache rests on: computing only the
        missing rows of a batch yields the same bits as the full batch."""
        rng = np.random.default_rng(0)
        ops = tiny_space.sample_indices(64, rng)
        full = tiny_predictor.predict_population(ops)
        for sel in (np.arange(5), np.array([0, 13, 63]),
                    np.arange(64)[::2], np.array([7])):
            subset = tiny_predictor.predict_population(ops[sel])
            assert np.array_equal(subset, full[sel])

    def test_cached_batch_equals_direct_batch(self, tiny_space,
                                              tiny_predictor):
        rng = np.random.default_rng(1)
        ops = tiny_space.sample_indices(40, rng)
        cache = EvalCache(tiny_predictor)
        # warm half the rows first, then ask for everything
        cache.predict_population(ops[::2])
        mixed = cache.predict_population(ops)
        direct = tiny_predictor.predict_population(ops)
        assert np.array_equal(mixed, direct)
        assert cache.predict_hits == 20 and cache.predict_misses == 40


class TestMemoization:
    def test_predict_counters(self, tiny_space, tiny_predictor):
        rng = np.random.default_rng(2)
        ops = tiny_space.sample_indices(10, rng)
        cache = EvalCache(tiny_predictor)
        cache.predict_population(ops)
        assert (cache.predict_hits, cache.predict_misses) == (0, 10)
        cache.predict_population(ops)
        assert (cache.predict_hits, cache.predict_misses) == (10, 10)
        counters = cache.counters()
        assert counters["cache_hit_rate"] == 0.5

    def test_fitness_memoizes_per_epoch_count(self, tiny_space, tiny_oracle):
        cache = EvalCache(oracle=tiny_oracle)
        arch = tiny_space.sample(np.random.default_rng(3))
        a = cache.fitness(arch, epochs=50)
        b = cache.fitness(arch, epochs=50)
        c = cache.fitness(arch, epochs=360)
        assert a == b == tiny_oracle.evaluate(arch, epochs=50).top1
        assert c == tiny_oracle.evaluate(arch, epochs=360).top1
        assert cache.fitness_hits == 1 and cache.fitness_misses == 2

    def test_predict_arch_matches_population_path(self, tiny_space,
                                                  tiny_predictor):
        arch = tiny_space.sample(np.random.default_rng(4))
        cache = EvalCache(tiny_predictor)
        scalar = cache.predict_arch(arch)
        batch = tiny_predictor.predict_population(
            np.asarray([arch.op_indices]))
        assert scalar == batch[0]

    def test_needs_predictor_or_oracle(self):
        with pytest.raises(ValueError):
            EvalCache()


class TestArchiveRoundTrip:
    def test_flush_and_preload(self, tmp_path, tiny_space, tiny_predictor,
                               tiny_oracle):
        path = str(tmp_path / "arc.jsonl")
        rng = np.random.default_rng(5)
        ops = tiny_space.sample_indices(12, rng)
        arch = Architecture(tuple(ops[0].tolist()))

        with ArchitectureArchive(path, space=tiny_space) as arc:
            cache = EvalCache(tiny_predictor, tiny_oracle, archive=arc)
            first = cache.predict_population(ops)
            top1 = cache.fitness(arch, epochs=50)
            written = cache.flush(engine="test", seed=5,
                                  config_fingerprint="fp")
            assert written == 12

        with ArchitectureArchive(path, space=tiny_space) as arc:
            warm = EvalCache(tiny_predictor, tiny_oracle, archive=arc)
            again = warm.predict_population(ops)
            assert np.array_equal(again, first)
            assert warm.predict_misses == 0
            assert warm.fitness(arch, epochs=50) == top1
            assert warm.fitness_hits == 1 and warm.fitness_misses == 0
            # provenance written through
            record = arc.get(tuple(ops[0].tolist()))
            assert record.provenance == {"engine": "test", "seed": 5,
                                         "fingerprint": "fp"}
            assert record.score == top1

    def test_stale_fingerprint_is_ignored(self, tmp_path, tiny_space,
                                          tiny_predictor, tiny_latency_model):
        from repro.predictor.mlp import MLPPredictor

        path = str(tmp_path / "arc.jsonl")
        rng = np.random.default_rng(6)
        ops = tiny_space.sample_indices(6, rng)
        with ArchitectureArchive(path, space=tiny_space) as arc:
            cache = EvalCache(tiny_predictor, archive=arc)
            cache.predict_population(ops)
            cache.flush()
        # a differently-fitted predictor must not trust those extras
        other = MLPPredictor(tiny_space, hidden=(8,), seed=9)
        data = collect_latency_dataset(tiny_latency_model, 80,
                                       np.random.default_rng(7))
        other.fit(data, epochs=5, batch_size=32, lr=3e-3, weight_decay=0.0)
        assert model_fingerprint(other) != model_fingerprint(tiny_predictor)
        with ArchitectureArchive(path, space=tiny_space) as arc:
            cold = EvalCache(other, archive=arc)
            cold.predict_population(ops)
            assert cold.predict_hits == 0

    def test_oracle_fingerprint_distinguishes_seeds(self, tiny_space):
        a = AccuracyOracle(tiny_space)
        b = AccuracyOracle(tiny_space, seed=1234)
        assert oracle_fingerprint(a) != oracle_fingerprint(b)
        assert oracle_fingerprint(a) == oracle_fingerprint(
            AccuracyOracle(tiny_space))


class TestEngineWiring:
    def test_cache_must_wrap_the_engines_models(self, tiny_space,
                                                tiny_predictor, tiny_oracle):
        from repro.predictor.analytic import AnalyticCostPredictor

        other = AnalyticCostPredictor(tiny_space, "macs_m")
        cache = EvalCache(other)
        config = EvolutionConfig(space=tiny_space, target=5.0,
                                 population_size=4, tournament_size=2,
                                 cycles=2)
        with pytest.raises(ValueError, match="wrap this engine's predictor"):
            EvolutionSearch(config, tiny_predictor, tiny_oracle, cache=cache)
        with pytest.raises(ValueError, match="wrap this engine's predictor"):
            RandomSearch(RandomSearchConfig(space=tiny_space, target=5.0),
                         tiny_predictor, tiny_oracle, cache=cache)

    def test_rl_cache_must_wrap_the_oracle(self, tiny_space,
                                           tiny_latency_model, tiny_oracle):
        cache = EvalCache(oracle=AccuracyOracle(tiny_space, seed=99))
        config = RLSearchConfig(space=tiny_space, iterations=2)
        with pytest.raises(ValueError, match="wrap this engine's oracle"):
            RLSearch(config, tiny_latency_model, tiny_oracle, cache=cache)


def run_evolution(tiny_space, tiny_predictor, tiny_oracle, cache=None,
                  journal=None):
    config = EvolutionConfig(space=tiny_space, target=4.0,
                             population_size=8, tournament_size=4,
                             cycles=12, seed=17)
    engine = EvolutionSearch(config, tiny_predictor, tiny_oracle, cache=cache)
    return engine.search(journal=journal)


class TestWarmArchiveDeterminism:
    def test_warm_rerun_is_bit_identical_with_cache_hits(
            self, tmp_path, tiny_space, tiny_predictor, tiny_oracle):
        path = str(tmp_path / "arc.jsonl")
        trace = str(tmp_path / "warm.jsonl")

        cold = run_evolution(tiny_space, tiny_predictor, tiny_oracle)

        # populate the archive with a cached run (itself bit-identical)
        with ArchitectureArchive(path, space=tiny_space) as arc:
            cache = EvalCache(tiny_predictor, tiny_oracle, archive=arc)
            populate = run_evolution(tiny_space, tiny_predictor, tiny_oracle,
                                     cache=cache)
        assert populate.architecture == cold.architecture
        assert populate.predicted_metric == cold.predicted_metric

        # warm rerun against the populated archive, journal attached
        journal = RunJournal(trace)
        with ArchitectureArchive(path, space=tiny_space) as arc:
            warm_cache = EvalCache(tiny_predictor, tiny_oracle, archive=arc)
            warm = run_evolution(tiny_space, tiny_predictor, tiny_oracle,
                                 cache=warm_cache, journal=journal)
        journal.close()

        assert warm.architecture == cold.architecture
        assert warm.predicted_metric == cold.predicted_metric
        assert warm.num_search_steps == cold.num_search_steps
        for name, array in warm.trajectory.as_arrays().items():
            np.testing.assert_array_equal(
                array, cold.trajectory.as_arrays()[name])

        run_end = [e for e in read_journal(trace)
                   if e.get("event") == "run_end"][-1]
        assert run_end["cache_hits"] > 0
        assert run_end["cache_hit_rate"] > 0
        # the whole rerun was answered from the archive: the predictor and
        # oracle were never invoked for a genotype the cold run evaluated
        assert run_end["fitness_misses"] == 0

    def test_random_search_warm_rerun(self, tmp_path, tiny_space,
                                      tiny_predictor, tiny_oracle):
        path = str(tmp_path / "arc.jsonl")
        config = RandomSearchConfig(space=tiny_space, target=4.0,
                                    num_samples=60, seed=3)

        cold = RandomSearch(config, tiny_predictor, tiny_oracle).search()
        with ArchitectureArchive(path, space=tiny_space) as arc:
            cache = EvalCache(tiny_predictor, tiny_oracle, archive=arc)
            RandomSearch(config, tiny_predictor, tiny_oracle,
                         cache=cache).search()
        with ArchitectureArchive(path, space=tiny_space) as arc:
            warm_cache = EvalCache(tiny_predictor, tiny_oracle, archive=arc)
            warm = RandomSearch(config, tiny_predictor, tiny_oracle,
                                cache=warm_cache).search()
            assert warm_cache.hits > 0 and warm_cache.misses == 0
        assert warm.architecture == cold.architecture
        assert warm.predicted_metric == cold.predicted_metric

    def test_rl_cached_run_matches_uncached(self, tiny_space,
                                            tiny_latency_model, tiny_oracle):
        # RL latency measurements consume the RNG and stay uncached; only
        # the oracle rewards memoize, so cached == uncached bit-for-bit
        config = RLSearchConfig(space=tiny_space, target=4.0, iterations=6,
                                batch_archs=4, seed=2)
        plain = RLSearch(config, tiny_latency_model, tiny_oracle).search()
        cache = EvalCache(oracle=tiny_oracle)
        cached = RLSearch(config, tiny_latency_model, tiny_oracle,
                          cache=cache).search()
        assert cached.architecture == plain.architecture
        assert cached.predicted_metric == plain.predicted_metric
        assert cache.fitness_hits + cache.fitness_misses == 6 * 4


class TestDatasetWriteThrough:
    def test_latency_campaign_records_and_stays_identical(
            self, tmp_path, tiny_space, tiny_latency_model):
        path = str(tmp_path / "arc.jsonl")
        with ArchitectureArchive(path, space=tiny_space) as arc:
            recorded = collect_latency_dataset(
                tiny_latency_model, 30, np.random.default_rng(8),
                archive=arc)
            assert len(arc) > 0
            record = next(arc.records())
            device = tiny_latency_model.device.name
            assert record.provenance["engine"] == "latency-campaign"
            assert "latency_ms" in record.devices[device]
            assert "measured_latency_ms" in record.devices[device]
            assert record.macs_m is not None and record.params_m is not None
        plain = collect_latency_dataset(tiny_latency_model, 30,
                                        np.random.default_rng(8))
        np.testing.assert_array_equal(recorded.targets, plain.targets)
        np.testing.assert_array_equal(recorded.features, plain.features)

    def test_energy_campaign_records(self, tmp_path, tiny_space,
                                     tiny_energy_model):
        path = str(tmp_path / "arc.jsonl")
        with ArchitectureArchive(path, space=tiny_space) as arc:
            collect_energy_dataset(tiny_energy_model, 20,
                                   np.random.default_rng(9), archive=arc)
            record = next(arc.records())
            device = tiny_energy_model.device.name
            assert record.provenance["engine"] == "energy-campaign"
            assert "energy_mj" in record.devices[device]
            assert "measured_energy_mj" in record.devices[device]
