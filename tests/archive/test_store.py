"""Tests of the on-disk archive: round-trip, crash tails, content merge."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archive.store import (
    ArchitectureArchive,
    ArchiveError,
    arch_key,
    repair_archive,
)

L, K = 4, 7  # tiny-space geometry used throughout


def make_archive(tmp_path, name="arc.jsonl"):
    return ArchitectureArchive(str(tmp_path / name), num_layers=L,
                               num_operators=K)


class TestContentAddressing:
    def test_key_is_stable_and_distinct(self):
        a = arch_key((1, 2, 3, 0), K)
        assert a == arch_key((1, 2, 3, 0), K)
        assert a != arch_key((1, 2, 3, 1), K)
        # the address hashes the one-hot matrix, so K is part of the identity
        assert a != arch_key((1, 2, 3, 0), K + 1)

    def test_key_validates_range(self):
        with pytest.raises(ValueError):
            arch_key((0, 1, K, 2), K)
        with pytest.raises(ValueError):
            arch_key((-1, 0, 0, 0), K)
        with pytest.raises(ValueError):
            arch_key((), K)

    def test_same_genotype_merges_into_one_record(self, tmp_path):
        arc = make_archive(tmp_path)
        arc.add((1, 2, 3, 0), device="dev-a", latency_ms=5.0, engine="one")
        arc.add((1, 2, 3, 0), device="dev-b", latency_ms=9.0,
                score=71.5, engine="two")
        assert len(arc) == 1
        record = arc.get((1, 2, 3, 0))
        assert record.devices == {"dev-a": {"latency_ms": 5.0},
                                  "dev-b": {"latency_ms": 9.0}}
        assert record.score == 71.5
        assert record.provenance["engine"] == "two"  # last writer wins
        arc.close()

    def test_merge_survives_reopen(self, tmp_path):
        arc = make_archive(tmp_path)
        arc.add((1, 2, 3, 0), device="dev-a", latency_ms=5.0)
        arc.add((1, 2, 3, 0), device="dev-a", energy_mj=80.0)
        arc.close()
        reopened = make_archive(tmp_path)
        assert len(reopened) == 1
        assert reopened.get((1, 2, 3, 0)).devices["dev-a"] == {
            "latency_ms": 5.0, "energy_mj": 80.0}
        reopened.close()


@st.composite
def populations(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    rows = draw(st.lists(
        st.tuples(*[st.integers(min_value=0, max_value=K - 1)
                    for _ in range(L)]),
        min_size=n, max_size=n))
    values = draw(st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        min_size=n, max_size=n))
    return rows, values


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(populations())
    def test_write_reopen_identical_index(self, tmp_path_factory, pop):
        rows, values = pop
        path = str(tmp_path_factory.mktemp("hyp") / "arc.jsonl")
        arc = ArchitectureArchive(path, num_layers=L, num_operators=K)
        for row, value in zip(rows, values):
            arc.add(row, device="dev", latency_ms=value, macs_m=value / 2,
                    score=value / 3, engine="hyp", seed=1)
        index = arc.index()
        arc.close()
        reopened = ArchitectureArchive(path, num_layers=L, num_operators=K)
        reloaded = reopened.index()
        # dedup happens on write AND on replay, so the index matches exactly
        np.testing.assert_array_equal(index.ops, reloaded.ops)
        assert index.keys == reloaded.keys
        np.testing.assert_array_equal(index.score, reloaded.score)
        np.testing.assert_array_equal(index.macs_m, reloaded.macs_m)
        assert index.devices == reloaded.devices
        np.testing.assert_array_equal(index.cost, reloaded.cost)
        reopened.close()

    def test_float_values_round_trip_bit_for_bit(self, tmp_path):
        # JSON floats round-trip exactly in Python (repr shortest-form);
        # the warm-start determinism guarantee rests on this
        value = float(np.float64(1.0) / 3.0) * 17.123456789
        arc = make_archive(tmp_path)
        arc.add((0, 1, 2, 3), device="dev", latency_ms=value,
                extras={"pred:abc": value})
        arc.close()
        reopened = make_archive(tmp_path)
        record = reopened.get((0, 1, 2, 3))
        assert record.devices["dev"]["latency_ms"] == value
        assert record.extras["pred:abc"] == value
        reopened.close()


class TestLoudFailures:
    def fill(self, tmp_path):
        arc = make_archive(tmp_path)
        for i in range(5):
            arc.add((i % K, 0, 1, 2), device="dev", latency_ms=float(i))
        arc.close()
        return str(tmp_path / "arc.jsonl")

    def test_truncated_tail_raises(self, tmp_path):
        path = self.fill(tmp_path)
        with open(path, "r+", encoding="utf-8") as handle:
            raw = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(raw[:-10])  # cut mid-record, no trailing newline
        with pytest.raises(ArchiveError, match="repair_archive"):
            ArchitectureArchive(path, num_layers=L, num_operators=K)

    def test_corrupt_line_raises(self, tmp_path):
        path = self.fill(tmp_path)
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[3] = lines[3][:12] + "XX" + lines[3][14:]  # flip payload bytes
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ArchiveError, match="CRC"):
            ArchitectureArchive(path, num_layers=L, num_operators=K)

    def test_repair_truncates_to_longest_valid_prefix(self, tmp_path):
        path = self.fill(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("deadbeef {broken")  # crashed writer's tail
        with pytest.raises(ArchiveError):
            ArchitectureArchive(path, num_layers=L, num_operators=K)
        dropped = repair_archive(path)
        assert dropped == 1
        recovered = ArchitectureArchive(path, num_layers=L, num_operators=K)
        assert len(recovered) == 5
        recovered.close()

    def test_repair_with_unreadable_header_raises(self, tmp_path):
        path = str(tmp_path / "junk.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not an archive at all\n")
        with pytest.raises(ArchiveError, match="nothing to salvage"):
            repair_archive(path)

    def test_geometry_mismatch_raises(self, tmp_path):
        path = self.fill(tmp_path)
        with pytest.raises(ArchiveError, match="separate archive"):
            ArchitectureArchive(path, num_layers=L + 1, num_operators=K)

    def test_new_archive_requires_geometry(self, tmp_path):
        with pytest.raises(ArchiveError, match="space geometry"):
            ArchitectureArchive(str(tmp_path / "missing.jsonl"))

    def test_not_an_archive_magic(self, tmp_path):
        path = str(tmp_path / "other.jsonl")
        import json
        import zlib
        payload = json.dumps({"magic": "something-else", "version": 1})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"{zlib.crc32(payload.encode()):08x} {payload}\n")
        with pytest.raises(ArchiveError, match="bad magic"):
            ArchitectureArchive(path)

    def test_wrong_geometry_record_rejected_on_add(self, tmp_path):
        arc = make_archive(tmp_path)
        with pytest.raises(ValueError):
            arc.add((1, 2, 3), device="dev", latency_ms=1.0)
        arc.close()


class TestIndexAndStats:
    def test_index_caches_until_append(self, tmp_path):
        arc = make_archive(tmp_path)
        arc.add((0, 0, 0, 0), macs_m=1.0)
        first = arc.index()
        assert arc.index() is first
        arc.add((1, 1, 1, 1), macs_m=2.0)
        second = arc.index()
        assert second is not first
        assert len(second) == 2
        arc.close()

    def test_missing_values_are_nan(self, tmp_path):
        arc = make_archive(tmp_path)
        arc.add((0, 0, 0, 0), device="dev", latency_ms=4.0)
        arc.add((1, 1, 1, 1), macs_m=2.0, score=50.0)
        index = arc.index()
        assert np.isnan(index.score[0]) and index.score[1] == 50.0
        assert np.isnan(index.macs_m[0]) and index.macs_m[1] == 2.0
        column = index.device_column("dev", "latency_ms")
        assert column[0] == 4.0 and np.isnan(column[1])
        arc.close()

    def test_stats_counts(self, tmp_path):
        arc = make_archive(tmp_path)
        arc.add((0, 0, 0, 0), device="a", latency_ms=1.0, score=10.0)
        arc.add((1, 1, 1, 1), device="b", energy_mj=2.0, macs_m=3.0)
        stats = arc.stats()
        assert stats["records"] == 2
        assert stats["devices"] == {"a": 1, "b": 1}
        assert stats["with_score"] == 1
        assert stats["with_macs"] == 1
        arc.close()

    def test_add_population_single_flush(self, tmp_path):
        arc = make_archive(tmp_path)
        ops = np.array([[0, 1, 2, 3], [3, 2, 1, 0], [0, 1, 2, 3]])
        written = arc.add_population(
            ops, device="dev", latency_ms=np.array([1.0, 2.0, 3.0]),
            engine="pop")
        assert written == 3
        assert len(arc) == 2  # duplicate row merged
        # last write wins for the duplicate genotype
        assert arc.get((0, 1, 2, 3)).devices["dev"]["latency_ms"] == 3.0
        arc.close()


class TestConcurrency:
    def test_concurrent_index_and_merge_race(self, tmp_path):
        """Readers snapshotting index() while writers merge must never see
        a torn view (pre-fix: _merge dropped _index while from_records was
        re-stacking it on another thread)."""
        import sys
        import threading

        arc = make_archive(tmp_path)
        rng = np.random.default_rng(0)
        # a big seed population makes every index() rebuild slow enough to
        # overlap with merges (the pre-fix failure needs that overlap)
        seed_ops = rng.integers(0, K, size=(1500, L))
        arc.add_population(seed_ops, device="xavier",
                           latency_ms=rng.uniform(1, 9, 1500))

        stop = threading.Event()
        failures = []

        def reader():
            local = np.random.default_rng(threading.get_ident() % 2**31)
            last = 0
            while not stop.is_set():
                # pre-fix, index() re-stacked every record with no lock:
                # overlapping rebuilds raced _merge's cache drop, so a
                # reader could observe a torn or *older* view (a slow
                # rebuild overwriting a newer one)
                try:
                    index = arc.index()
                    n = len(index)
                    assert n >= last, f"index went backwards {last}->{n}"
                    last = n
                    assert index.ops.shape == (n, L)
                    assert index.cost.shape[0] == n
                    assert len(index.keys) == n
                    assert list(index.devices) == sorted(index.devices)
                    if n:
                        row = int(local.integers(0, n))
                        assert arch_key(index.ops[row], K) == index.keys[row]
                except Exception as exc:
                    failures.append(exc)
                    stop.set()

        # one writer appends fresh genotypes (the index must grow), the
        # other merges new devices into existing rows (cells must widen)
        devices = [f"dev-{chr(ord('a') + i)}" for i in range(12)]
        seen = {arch_key(row, K) for row in seed_ops}
        fresh = []
        for a in range(K):
            for b in range(K):
                for c in range(K):
                    for d in range(K):
                        if len(fresh) == 200:
                            break
                        combo = (a, b, c, d)
                        if arch_key(combo, K) not in seen:
                            fresh.append(combo)

        def growth_writer():
            for i, combo in enumerate(fresh):
                arc.add(combo, device=devices[i % len(devices)],
                        latency_ms=float(i), score=50.0 + i)
                try:
                    # the post-append view must include the append
                    assert len(arc.index()) == len(arc)
                except Exception as exc:
                    failures.append(exc)
                    stop.set()
                    return

        def merge_writer(seed):
            local = np.random.default_rng(seed)
            for _ in range(200):
                ops = seed_ops[int(local.integers(0, len(seed_ops)))]
                device = devices[int(local.integers(0, len(devices)))]
                arc.add(ops, device=device,
                        latency_ms=float(local.uniform(1, 9)),
                        score=float(local.uniform(40, 80)))

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writers = [threading.Thread(target=growth_writer),
                   threading.Thread(target=merge_writer, args=(202,))]
        # an index rebuild is ~1 ms; with the default 5 ms GIL switch
        # interval it would rarely be preempted and the race would hide
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(5e-5)
        try:
            for t in readers + writers:
                t.start()
            for t in writers:
                t.join()
            stop.set()
            for t in readers:
                t.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert not failures

        # the live view converged to exactly what a fresh replay rebuilds
        arc.flush()
        reopened = make_archive(tmp_path)
        live, replayed = arc.index(), reopened.index()
        assert live.keys == replayed.keys
        assert live.devices == replayed.devices
        np.testing.assert_array_equal(np.asarray(live.ops),
                                      np.asarray(replayed.ops))
        np.testing.assert_array_equal(np.asarray(live.cost),
                                      np.asarray(replayed.cost))
        np.testing.assert_array_equal(np.asarray(live.score),
                                      np.asarray(replayed.score))
        arc.close()
        reopened.close()
