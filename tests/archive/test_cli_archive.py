"""CLI surface added with the archive subsystem.

``repro serve`` itself is exercised over HTTP in ``test_service.py`` and by
the CI smoke test; here we cover the offline commands and the new flags.
"""

import json

import numpy as np
import pytest

from repro.archive.store import ArchitectureArchive
from repro.cli import build_parser, main
from repro.hardware.flops import count_macs_many, count_params_many
from repro.hardware.latency import LatencyModel
from repro.hardware.device import EDGE_NANO


@pytest.fixture
def tiny_archive(tmp_path, tiny_space):
    rng = np.random.default_rng(11)
    path = str(tmp_path / "arc.jsonl")
    ops = tiny_space.sample_indices(25, rng)
    latency = LatencyModel(tiny_space, EDGE_NANO)
    with ArchitectureArchive(path, space=tiny_space) as arc:
        arc.add_population(
            ops, device=EDGE_NANO.name,
            latency_ms=latency.latency_many(ops),
            macs_m=count_macs_many(tiny_space, ops) / 1e6,
            params_m=count_params_many(tiny_space, ops) / 1e6,
            score=rng.uniform(60, 76, size=len(ops)), engine="fixture")
    return path, ops


class TestPredictFlags:
    def test_device_changes_the_prediction(self, tiny_space, capsys):
        arch = ",".join("1" for _ in range(tiny_space.num_layers))
        assert main(["predict", "--tiny", "--arch", arch]) == 0
        xavier = capsys.readouterr().out
        assert main(["predict", "--tiny", "--arch", arch,
                     "--device", "edge-nano"]) == 0
        nano = capsys.readouterr().out
        assert "edge-nano" in nano and "xavier" in xavier
        assert xavier != nano

    def test_unknown_device_fails_loudly(self, tiny_space):
        arch = ",".join("1" for _ in range(tiny_space.num_layers))
        with pytest.raises(SystemExit, match="unknown device"):
            main(["predict", "--tiny", "--arch", arch, "--device", "tpu"])

    def test_arch_file_batch(self, tmp_path, tiny_space, capsys):
        rng = np.random.default_rng(0)
        ops = tiny_space.sample_indices(5, rng)
        path = tmp_path / "archs.txt"
        lines = ["# header comment", ""]
        lines += [",".join(map(str, row)) for row in ops.tolist()]
        path.write_text("\n".join(lines) + "\n")
        assert main(["predict", "--tiny", "--arch-file", str(path),
                     "--device", "edge-nano"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["device"] == "edge-nano"
        assert payload["count"] == 5
        latency = LatencyModel(tiny_space, EDGE_NANO)
        expected = [round(v, 6)
                    for v in latency.latency_many(ops).tolist()]
        assert payload["latency_ms"] == expected
        assert len(payload["macs_m"]) == 5

    def test_arch_and_arch_file_are_exclusive(self, tmp_path, tiny_space):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["predict", "--tiny"])
        path = tmp_path / "a.txt"
        path.write_text("1,1,1,1\n")
        with pytest.raises(SystemExit, match="exactly one"):
            main(["predict", "--tiny", "--arch", "1,1,1,1",
                  "--arch-file", str(path)])

    def test_malformed_file_line_names_the_line(self, tmp_path, tiny_space):
        path = tmp_path / "bad.txt"
        path.write_text("1,1,1,1\nnot,an,arch,x\n")
        with pytest.raises(SystemExit, match="bad.txt:2"):
            main(["predict", "--tiny", "--arch-file", str(path)])


class TestSweepMetricFlag:
    def test_parser_accepts_and_rejects(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--targets", "20,24",
                                  "--metric", "energy"])
        assert args.metric == "energy"
        assert parser.parse_args(["sweep", "--targets", "20"]).metric \
            == "latency"
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--targets", "20",
                               "--metric", "watts"])


class TestQueryCommand:
    def test_stats(self, tiny_archive, capsys):
        path, _ = tiny_archive
        assert main(["query", "--archive", path, "--stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 25
        assert EDGE_NANO.name in stats["devices"]

    def test_top_k_with_budget(self, tiny_archive, capsys):
        path, _ = tiny_archive
        assert main(["query", "--archive", path, "--k", "4",
                     "--device", "edge-nano",
                     "--budget", "latency=3.8",
                     "--budget", "macs_m=0.3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] <= 4
        for entry in payload["results"]:
            # "latency" budget shorthand canonicalised to latency_ms
            assert entry["devices"][EDGE_NANO.name]["latency_ms"] <= 3.8
            assert entry["macs_m"] <= 0.3

    def test_cost_objective(self, tiny_archive, capsys):
        path, _ = tiny_archive
        assert main(["query", "--archive", path, "--k", "3",
                     "--objective", "latency", "--device", "edge-nano"]) == 0
        payload = json.loads(capsys.readouterr().out)
        values = [e["devices"][EDGE_NANO.name]["latency_ms"]
                  for e in payload["results"]]
        assert values == sorted(values)

    def test_pareto(self, tiny_archive, capsys):
        path, _ = tiny_archive
        assert main(["query", "--archive", path, "--pareto",
                     "--device", "edge-nano"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] > 0

    def test_pareto_needs_device(self, tiny_archive):
        path, _ = tiny_archive
        with pytest.raises(SystemExit, match="requires --device"):
            main(["query", "--archive", path, "--pareto"])

    def test_nearest(self, tiny_archive, capsys):
        path, ops = tiny_archive
        arch = ",".join(map(str, ops[0].tolist()))
        assert main(["query", "--archive", path, "--nearest", arch,
                     "--k", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["hamming_layers"] == 0

    def test_missing_archive_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="space geometry"):
            main(["query", "--archive", str(tmp_path / "nope.jsonl"),
                  "--stats"])

    def test_malformed_budget(self, tiny_archive):
        path, _ = tiny_archive
        with pytest.raises(SystemExit, match="METRIC=VALUE"):
            main(["query", "--archive", path, "--budget", "latency24"])
        with pytest.raises(SystemExit, match="not a number"):
            main(["query", "--archive", path, "--budget", "latency=fast"])
