"""Batching predictor coalescing and the HTTP JSON API end-to-end."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.archive.service import ArchiveService, BatchingPredictor, \
    make_server
from repro.archive.store import ArchitectureArchive
from repro.predictor.analytic import AnalyticCostPredictor


@pytest.fixture(scope="module")
def analytic(tiny_space):
    return AnalyticCostPredictor(tiny_space, "macs_m")


class TestBatchingPredictor:
    def test_concurrent_requests_coalesce(self, tiny_space, analytic):
        """A burst of R requests is served by fewer than R forwards."""
        batcher = BatchingPredictor(analytic, tiny_space, window_s=0.25)
        rng = np.random.default_rng(0)
        requests = 8
        ops = [tiny_space.sample_indices(4, rng) for _ in range(requests)]
        results = [None] * requests
        barrier = threading.Barrier(requests)

        def worker(i):
            barrier.wait()
            results[i] = batcher.predict(ops[i])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(requests)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for i in range(requests):
            assert np.array_equal(results[i],
                                  analytic.predict_population(ops[i]))
        stats = batcher.stats()
        assert stats["predict_requests"] == requests
        assert stats["predict_batches"] < requests
        assert stats["predict_archs"] == 4 * requests
        assert stats["largest_batch"] > 4
        batcher.close()

    def test_sequential_requests_still_work(self, tiny_space, analytic):
        batcher = BatchingPredictor(analytic, tiny_space, window_s=0.0)
        ops = tiny_space.sample_indices(3, np.random.default_rng(1))
        out = batcher.predict(ops)
        assert np.array_equal(out, analytic.predict_population(ops))
        batcher.close()

    def test_max_batch_dispatches_early(self, tiny_space, analytic):
        batcher = BatchingPredictor(analytic, tiny_space, window_s=60.0,
                                    max_batch=4)
        # a single request at max_batch must not wait out the huge window
        ops = tiny_space.sample_indices(4, np.random.default_rng(2))
        out = batcher.predict(ops, timeout=10.0)
        assert len(out) == 4
        batcher.close()

    def test_predictor_error_reaches_every_waiter(self, tiny_space):
        class Exploding:
            def predict_population(self, ops):
                raise RuntimeError("boom")

        batcher = BatchingPredictor(Exploding(), tiny_space, window_s=0.0)
        ops = tiny_space.sample_indices(2, np.random.default_rng(3))
        with pytest.raises(RuntimeError, match="boom"):
            batcher.predict(ops)
        batcher.close()

    def test_closed_batcher_raises(self, tiny_space, analytic):
        batcher = BatchingPredictor(analytic, tiny_space)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.predict(tiny_space.sample_indices(
                1, np.random.default_rng(4)))

    def test_invalid_parameters(self, tiny_space, analytic):
        with pytest.raises(ValueError):
            BatchingPredictor(analytic, tiny_space, window_s=-1.0)
        with pytest.raises(ValueError):
            BatchingPredictor(analytic, tiny_space, max_batch=0)


@pytest.fixture
def server(tmp_path, tiny_space, analytic):
    """A live HTTP server on an ephemeral port, backed by a tiny archive."""
    rng = np.random.default_rng(7)
    path = str(tmp_path / "arc.jsonl")
    archive = ArchitectureArchive(path, space=tiny_space)
    ops = tiny_space.sample_indices(30, rng)
    archive.add_population(
        ops, device="xavier",
        latency_ms=rng.uniform(10, 40, size=30),
        macs_m=analytic.predict_population(ops),
        score=rng.uniform(60, 76, size=30), engine="fixture")
    service = ArchiveService(tiny_space, analytic, metric_name="macs_m",
                             device_name="xavier", archive=archive,
                             window_s=0.0)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, ops
    httpd.shutdown()
    httpd.server_close()
    service.close()
    thread.join(timeout=5)


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def post(base, path, payload):
    req = urllib.request.Request(
        base + path, json.dumps(payload).encode("utf-8"),
        {"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as response:
        return json.loads(response.read())


class TestHTTPEndpoints:
    def test_health(self, server):
        base, _ = server
        assert get(base, "/health") == {"ok": True}

    def test_predict_matches_direct(self, server, tiny_space, analytic):
        base, ops = server
        batch = ops[:6].tolist()
        body = post(base, "/predict", {"archs": batch})
        assert body["metric"] == "macs_m"
        assert body["count"] == 6
        expected = analytic.predict_population(np.asarray(batch)).tolist()
        assert body["predictions"] == expected

    def test_single_arch_row_is_promoted(self, server, tiny_space):
        base, ops = server
        body = post(base, "/predict", {"archs": ops[0].tolist()})
        assert body["count"] == 1

    def test_query_with_budget(self, server):
        base, _ = server
        body = post(base, "/query",
                    {"k": 5, "budgets": {"latency_ms": 30.0}})
        assert 0 < body["count"] <= 5
        for entry in body["results"]:
            assert entry["devices"]["xavier"]["latency_ms"] <= 30.0

    def test_pareto(self, server):
        base, _ = server
        body = post(base, "/pareto", {"device": "xavier"})
        assert body["count"] > 0
        costs = [e["devices"]["xavier"]["latency_ms"]
                 for e in body["results"]]
        assert costs == sorted(costs)

    def test_nearest(self, server):
        base, ops = server
        body = post(base, "/nearest", {"arch": ops[0].tolist(), "k": 3})
        assert body["count"] == 3
        assert body["results"][0]["hamming_layers"] == 0

    def test_stats_counts_requests_and_batches(self, server):
        base, ops = server
        for _ in range(3):
            post(base, "/predict", {"archs": ops[:2].tolist()})
        stats = get(base, "/stats")
        assert stats["predict_requests"] >= 3
        assert stats["predict_batches"] >= 1
        assert stats["endpoints"]["predict"] >= 3
        assert stats["archive"]["records"] == 30

    def test_bad_body_is_400(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as info:
            post(base, "/predict", {"archs": []})
        assert info.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as info:
            post(base, "/predict", {"archs": [["x", "y"]]})
        assert info.value.code == 400

    def test_out_of_space_arch_is_400(self, server, tiny_space):
        base, _ = server
        bad = [[99] * tiny_space.num_layers]
        with pytest.raises(urllib.error.HTTPError) as info:
            post(base, "/predict", {"archs": bad})
        assert info.value.code == 400

    def test_unknown_path_is_404(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as info:
            get(base, "/nope")
        assert info.value.code == 404

    def test_shutdown_endpoint(self, tiny_space, analytic):
        service = ArchiveService(tiny_space, analytic, window_s=0.0)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        assert post(base, "/shutdown", {}) == {"ok": True,
                                               "shutting_down": True}
        thread.join(timeout=5)
        assert not thread.is_alive()
        httpd.server_close()
        service.close()

    def test_pagination_cursor(self, server):
        base, _ = server
        full = post(base, "/query", {"k": 30})
        first = post(base, "/query", {"k": 30, "limit": 7})
        assert first["count"] == 7
        assert first["total"] == full["count"]
        assert first["next"] == 7
        last = post(base, "/query", {"k": 30, "limit": 7,
                                     "offset": full["count"] - 2})
        assert last["count"] == 2
        assert last["next"] is None

    def test_bad_pagination_is_400(self, server):
        base, _ = server
        for body in ({"k": 5, "limit": 0}, {"k": 5, "offset": -1},
                     {"k": 5, "limit": "many"}):
            with pytest.raises(urllib.error.HTTPError) as info:
                post(base, "/query", body)
            assert info.value.code == 400

    def test_unknown_device_is_400_naming_known(self, server):
        """/query, /pareto and /nearest must reject an unknown payload
        device with a JSON 400 naming the archive's devices — not silently
        return device-less rows (regression: global objectives never
        consulted the device, so typos passed through)."""
        base, ops = server
        for path, body in (
                ("/query", {"k": 3, "device": "gpuzilla"}),
                ("/pareto", {"device": "gpuzilla"}),
                ("/nearest", {"arch": ops[0].tolist(), "k": 2,
                              "device": "gpuzilla"})):
            with pytest.raises(urllib.error.HTTPError) as info:
                post(base, path, body)
            assert info.value.code == 400, path
            error = json.loads(info.value.read())["error"]
            assert "gpuzilla" in error and "xavier" in error, path

    def test_known_device_still_served(self, server):
        base, ops = server
        body = post(base, "/nearest", {"arch": ops[0].tolist(), "k": 2,
                                       "device": "xavier"})
        assert body["count"] == 2
        assert "xavier" in body["results"][0]["devices"]

    def test_query_without_archive_is_400(self, tiny_space, analytic):
        service = ArchiveService(tiny_space, analytic, window_s=0.0)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                post(base, "/query", {"k": 3})
            assert info.value.code == 400
            assert "--archive" in json.loads(info.value.read())["error"]
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()


class _CountingPredictor:
    """Wraps a predictor, recording exactly which rows reach a forward."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0
        self.rows_seen = 0

    def predict_population(self, ops):
        self.calls += 1
        self.rows_seen += len(ops)
        return self.inner.predict_population(ops)


class _ExplodingArchive:
    """An archive stub whose stats() raises, as a failing mmap would."""

    def stats(self):
        raise RuntimeError("stats exploded")

    def close(self):
        pass


class TestRegressions:
    """Named regression tests for the serving-stack bugfixes.

    Each of these fails against the pre-fix code: do_GET without error
    handling killed the connection instead of answering 500; /shutdown
    stopped the accept loop but leaked the batcher thread and archive
    handle; a timed-out predict caller's request was still forwarded and
    counted.
    """

    def test_get_stats_failure_returns_500_json(self, tiny_space, analytic):
        """A raising handler on GET must yield a JSON 500, not a dead
        socket (pre-fix: http.client.RemoteDisconnected)."""
        service = ArchiveService(tiny_space, analytic, window_s=0.0,
                                 archive=_ExplodingArchive())
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                get(base, "/stats")
            assert info.value.code == 500
            assert "stats exploded" in json.loads(info.value.read())["error"]
            # the server survives and keeps answering
            assert get(base, "/health") == {"ok": True}
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()
            thread.join(timeout=5)

    def test_shutdown_closes_batcher_and_archive(self, tmp_path, tiny_space,
                                                 analytic):
        """POST /shutdown must release service resources, not just stop
        accepting (pre-fix: batcher thread and store handle leaked)."""
        archive = ArchitectureArchive(str(tmp_path / "arc.jsonl"),
                                      space=tiny_space)
        service = ArchiveService(tiny_space, analytic, window_s=0.0,
                                 archive=archive)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        assert post(base, "/shutdown", {})["shutting_down"] is True
        thread.join(timeout=5)
        assert not thread.is_alive()
        # service.close() runs on the shutdown thread right after the
        # accept loop exits; give it a moment, then assert it happened
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not archive.closed:
            time.sleep(0.01)
        assert archive.closed
        assert not service.batcher._thread.is_alive()
        service.close()   # idempotent: a second close must be a no-op
        httpd.server_close()

    def test_timed_out_predict_is_cancelled_at_dispatch(self, tiny_space,
                                                        analytic):
        """An abandoned request must not reach the predictor or drift the
        throughput counters (pre-fix: it was forwarded and counted)."""
        counting = _CountingPredictor(analytic)
        batcher = BatchingPredictor(counting, tiny_space, window_s=1.0)
        rng = np.random.default_rng(11)
        abandoned = tiny_space.sample_indices(5, rng)
        served = tiny_space.sample_indices(3, rng)
        with pytest.raises(TimeoutError):
            batcher.predict(abandoned, timeout=0.1)
        out = batcher.predict(served, timeout=10.0)
        assert np.array_equal(out, analytic.predict_population(served))
        assert counting.rows_seen == len(served)   # abandoned rows never ran
        stats = batcher.stats()
        assert stats["predict_requests"] == 2
        assert stats["predict_cancelled"] == 1
        assert stats["predict_archs"] == len(served)
        assert stats["largest_batch"] == len(served)
        batcher.close()
