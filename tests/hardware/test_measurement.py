"""Tests of the measurement-campaign protocol (warmup/trials/outliers)."""

import numpy as np
import pytest

from repro.hardware.measurement import (
    MeasurementProtocol,
    MeasurementReport,
    measure_latency_campaign,
)


class TestProtocolValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(warmup=-1)
        with pytest.raises(ValueError):
            MeasurementProtocol(trials=0)

    def test_rejects_bad_aggregate(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(aggregate="mode")

    def test_rejects_bad_spike_probability(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(spike_probability=1.0)


class TestProtocolRun:
    def test_warmup_samples_discarded(self):
        calls = []

        def sample():
            calls.append(len(calls))
            return 100.0 if len(calls) <= 3 else 10.0

        protocol = MeasurementProtocol(warmup=3, trials=5,
                                       spike_probability=0.0)
        report = protocol.run(sample, np.random.default_rng(0))
        assert report.value == 10.0  # the hot-cache value, not the cold one
        assert len(calls) == 8

    def test_median_robust_to_single_spike(self):
        values = iter([10.0, 10.1, 9.9, 50.0, 10.0])
        protocol = MeasurementProtocol(warmup=0, trials=5,
                                       spike_probability=0.0)
        report = protocol.run(lambda: next(values), np.random.default_rng(0))
        assert abs(report.value - 10.0) < 0.2

    def test_outlier_rejection_counts(self):
        values = iter([10.0, 10.05, 9.95, 10.02, 9.98, 80.0])
        protocol = MeasurementProtocol(warmup=0, trials=6,
                                       outlier_sigma=4.0,
                                       spike_probability=0.0)
        report = protocol.run(lambda: next(values), np.random.default_rng(0))
        assert report.outliers_rejected == 1
        assert abs(report.value - 10.0) < 0.1

    def test_outlier_rejection_disabled(self):
        values = iter([10.0, 10.0, 80.0])
        protocol = MeasurementProtocol(warmup=0, trials=3, outlier_sigma=None,
                                       spike_probability=0.0)
        report = protocol.run(lambda: next(values), np.random.default_rng(0))
        assert report.outliers_rejected == 0

    def test_trimmed_mean_aggregate(self):
        values = iter([1.0, 2.0, 3.0, 4.0, 100.0])
        protocol = MeasurementProtocol(warmup=0, trials=5,
                                       aggregate="trimmed_mean",
                                       outlier_sigma=None,
                                       spike_probability=0.0)
        report = protocol.run(lambda: next(values), np.random.default_rng(0))
        assert report.value == pytest.approx(3.0)  # mean of 2, 3, 4

    def test_constant_signal(self):
        protocol = MeasurementProtocol(warmup=1, trials=4,
                                       spike_probability=0.0)
        report = protocol.run(lambda: 7.0, np.random.default_rng(0))
        assert report.value == 7.0
        assert report.std == 0.0

    def test_relative_std(self):
        report = MeasurementReport(value=10.0, mean=10.0, std=0.5, trials=5,
                                   outliers_rejected=0)
        assert report.relative_std == pytest.approx(0.05)

    def test_spikes_injected_and_rejected(self):
        """With spikes on, the robust value stays near the truth while the
        raw mean would be pulled up."""
        protocol = MeasurementProtocol(warmup=0, trials=200,
                                       spike_probability=0.2, spike_scale=3.0)
        rng = np.random.default_rng(1)
        report = protocol.run(lambda: 10.0 + rng.normal(0, 0.05), rng)
        assert abs(report.value - 10.0) < 0.1
        assert report.outliers_rejected > 10


class TestCampaign:
    def test_reports_match_model(self, tiny_space, tiny_latency_model, rng):
        archs = tiny_space.sample_many(5, rng)
        reports = measure_latency_campaign(tiny_latency_model, archs, rng)
        assert len(reports) == 5
        for arch, report in zip(archs, reports):
            true = tiny_latency_model.latency_ms(arch)
            assert abs(report.value - true) < 0.15

    def test_protocol_beats_single_measurement(self, tiny_space,
                                               tiny_latency_model):
        """Median-of-trials error < single-shot error, on average."""
        rng = np.random.default_rng(3)
        archs = tiny_space.sample_many(30, rng)
        protocol = MeasurementProtocol(warmup=1, trials=9,
                                       spike_probability=0.05)
        single_err, robust_err = 0.0, 0.0
        for arch in archs:
            true = tiny_latency_model.latency_ms(arch)
            single_err += abs(tiny_latency_model.measure(arch, rng) - true)
            report = protocol.run(
                lambda a=arch: tiny_latency_model.measure(a, rng), rng)
            robust_err += abs(report.value - true)
        assert robust_err < single_err
