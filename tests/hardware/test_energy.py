"""Tests of the energy model and drifting measurements."""

import numpy as np
import pytest

from repro.hardware.energy import EnergyMeter, EnergyModel
from repro.search_space.operators import SKIP_INDEX
from repro.search_space.space import Architecture


class TestEnergyModel:
    def test_monotone_in_capacity(self, full_space, full_energy_model):
        small = Architecture((0,) * 21)
        big = Architecture((5,) * 21)
        assert full_energy_model.energy_mj(big) > full_energy_model.energy_mj(small)

    def test_includes_static_term(self, full_space, full_energy_model,
                                  full_latency_model):
        arch = Architecture((SKIP_INDEX,) * 21)
        latency = full_latency_model.latency_ms(arch)
        energy = full_energy_model.energy_mj(arch)
        static = full_energy_model.device.static_power_w * latency
        assert energy >= static

    def test_se_increases_energy(self, full_space, full_energy_model):
        arch = Architecture((1,) * 21)
        assert (full_energy_model.energy_mj(arch, with_se_last=9)
                > full_energy_model.energy_mj(arch))

    def test_deterministic(self, full_space, full_energy_model, rng):
        arch = full_space.sample(rng)
        assert full_energy_model.energy_mj(arch) == full_energy_model.energy_mj(arch)

    def test_range_matches_figure8_band(self, full_space, full_energy_model, rng):
        # Figure 8 searches under a 500 mJ constraint: random architectures
        # must straddle that value for the experiment to be meaningful.
        energies = [full_energy_model.energy_mj(full_space.sample(rng))
                    for _ in range(200)]
        assert min(energies) < 500.0 < max(energies)


class TestEnergyMeter:
    def test_noisier_than_latency(self, full_space, full_energy_model,
                                  full_latency_model):
        # The paper notes temperature noise makes energy fits visibly worse.
        rng = np.random.default_rng(0)
        arch = full_space.sample(rng)
        meter = EnergyMeter(full_energy_model, np.random.default_rng(1))
        energy_samples = np.array([meter.measure(arch) for _ in range(200)])
        rel_energy = energy_samples.std() / energy_samples.mean()
        lat_samples = np.array(
            [full_latency_model.measure(arch, rng) for _ in range(200)])
        rel_lat = lat_samples.std() / lat_samples.mean()
        assert rel_energy > rel_lat

    def test_drift_is_correlated(self, full_space, full_energy_model):
        # Consecutive drift states must be correlated (AR(1)), unlike white
        # noise: compare lag-1 autocorrelation of residuals.
        rng = np.random.default_rng(2)
        arch = Architecture((1,) * 21)
        meter = EnergyMeter(full_energy_model, rng)
        true = full_energy_model.energy_mj(arch)
        residuals = np.array([meter.measure(arch) - true for _ in range(600)])
        lag1 = np.corrcoef(residuals[:-1], residuals[1:])[0, 1]
        assert lag1 > 0.5

    def test_reset_clears_drift(self, full_space, full_energy_model):
        meter = EnergyMeter(full_energy_model, np.random.default_rng(3))
        arch = Architecture((1,) * 21)
        for _ in range(100):
            meter.measure(arch)
        meter.reset()
        assert meter._drift == 0.0

    def test_measure_many(self, full_space, full_energy_model, rng):
        meter = EnergyMeter(full_energy_model, np.random.default_rng(4))
        archs = full_space.sample_many(5, rng)
        out = meter.measure_many(archs)
        assert out.shape == (5,)
        assert (out > 0).all()
