"""Calibration bands of the simulated Xavier (see DESIGN.md §2).

These tests pin the distributional properties the paper's experiments rely
on; if a device-profile constant changes, these fail before any benchmark
silently drifts.
"""

import numpy as np

from repro.hardware.flops import count_macs
from repro.search_space.space import Architecture


class TestLatencyBands:
    def test_random_arch_band(self, full_space, full_latency_model, rng):
        lats = np.array([full_latency_model.latency_ms(full_space.sample(rng))
                         for _ in range(300)])
        # searched architectures live in 20–30 ms; random ones straddle it
        assert 20.0 < lats.mean() < 28.0
        assert lats.min() > 10.0
        assert lats.max() < 40.0

    def test_targets_all_reachable(self, full_space, full_latency_model, rng):
        """Every Table-2 target (20–30 ms) is inside the achievable range."""
        lats = [full_latency_model.latency_ms(full_space.sample(rng))
                for _ in range(300)]
        all_small = full_latency_model.latency_ms(Architecture((0,) * 21))
        all_big = full_latency_model.latency_ms(Architecture((5,) * 21))
        for target in (20, 22, 24, 26, 28, 30):
            assert all_small < target < all_big

    def test_flops_decoupled_from_latency(self, full_space, full_latency_model,
                                          rng):
        """Figure 2: the FLOPs↔latency correlation is clearly below 1, and
        architectures in a narrow latency band span a wide FLOPs range."""
        archs = full_space.sample_many(300, rng)
        lats = np.array([full_latency_model.latency_ms(a) for a in archs])
        macs = np.array([count_macs(full_space, a) for a in archs], dtype=float)
        corr = np.corrcoef(lats, macs)[0, 1]
        assert 0.4 < corr < 0.95
        band = np.abs(lats - np.median(lats)) < 0.75
        spread = macs[band].max() / macs[band].min()
        assert spread > 1.15


class TestEnergyBands:
    def test_energy_band(self, full_space, full_energy_model, rng):
        energies = np.array(
            [full_energy_model.energy_mj(full_space.sample(rng))
             for _ in range(200)])
        assert 350.0 < energies.mean() < 550.0

    def test_flops_decoupled_from_energy(self, full_space, full_energy_model,
                                         rng):
        archs = full_space.sample_many(200, rng)
        energies = np.array([full_energy_model.energy_mj(a) for a in archs])
        macs = np.array([count_macs(full_space, a) for a in archs], dtype=float)
        assert np.corrcoef(energies, macs)[0, 1] < 0.98
