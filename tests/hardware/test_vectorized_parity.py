"""Scalar ↔ vectorized parity of the cost-table batch APIs.

The batch APIs (`latency_many`, `measure_many`, `energy_many`,
`arch_cost_many`, `encode_many`, LUT `predict_many`) promise *bit-for-bit*
agreement with the per-architecture scalar paths — including under a shared
seeded generator, so existing cached campaign artifacts stay valid.  These
properties pin that contract down with hypothesis-driven random populations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import flops
from repro.hardware.energy import EnergyMeter, EnergyModel
from repro.hardware.lut import LatencyLUT
from repro.search_space.macro import MacroConfig
from repro.search_space.space import Architecture, SearchSpace

TINY_LAYERS = SearchSpace(MacroConfig.tiny()).num_layers


def ops_matrix(space_layers, max_rows=12):
    """Strategy: an (N, L) population of op indices as a list of rows."""
    row = st.lists(st.integers(min_value=0, max_value=6),
                   min_size=space_layers, max_size=space_layers)
    return st.lists(row, min_size=1, max_size=max_rows)


class TestLatencyParity:
    @settings(max_examples=40, deadline=None)
    @given(rows=ops_matrix(TINY_LAYERS), with_se_last=st.integers(min_value=0, max_value=2))
    def test_latency_many_matches_scalar(self, rows, with_se_last,
                                         tiny_latency_model):
        ops = np.array(rows, dtype=np.int64)
        batched = tiny_latency_model.latency_many(ops, with_se_last=with_se_last)
        scalar = [tiny_latency_model.latency_ms(Architecture(tuple(r)),
                                                with_se_last=with_se_last)
                  for r in rows]
        assert np.array_equal(batched, np.array(scalar))

    @settings(max_examples=25, deadline=None)
    @given(rows=ops_matrix(TINY_LAYERS), seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_measure_many_bitstream_parity(self, rows, seed, tiny_latency_model):
        """Seeded measure_many == a loop of measure() on the same generator."""
        ops = np.array(rows, dtype=np.int64)
        batched = tiny_latency_model.measure_many(ops, np.random.default_rng(seed))
        rng = np.random.default_rng(seed)
        scalar = [tiny_latency_model.measure(Architecture(tuple(r)), rng)
                  for r in rows]
        assert np.array_equal(batched, np.array(scalar))

    def test_full_space_parity(self, full_latency_model, full_space, rng):
        ops = full_space.sample_indices(64, rng)
        batched = full_latency_model.latency_many(ops)
        scalar = [full_latency_model.latency_ms(a)
                  for a in full_space.indices_to_archs(ops)]
        assert np.array_equal(batched, np.array(scalar))

    def test_accepts_architecture_sequence(self, tiny_space, tiny_latency_model, rng):
        archs = tiny_space.sample_many(8, rng)
        from_archs = tiny_latency_model.latency_many(archs)
        from_ops = tiny_latency_model.latency_many(tiny_space.as_index_matrix(archs))
        assert np.array_equal(from_archs, from_ops)

    def test_empty_population(self, tiny_latency_model):
        ops = np.zeros((0, TINY_LAYERS), dtype=np.int64)
        assert len(tiny_latency_model.latency_many(ops)) == 0
        assert len(tiny_latency_model.measure_many(ops, np.random.default_rng(0))) == 0


class TestCostParity:
    @settings(max_examples=40, deadline=None)
    @given(rows=ops_matrix(TINY_LAYERS), with_se_last=st.integers(min_value=0, max_value=2))
    def test_arch_cost_many_matches_scalar(self, rows, with_se_last, tiny_space):
        ops = np.array(rows, dtype=np.int64)
        pop = flops.arch_cost_many(tiny_space, ops, with_se_last=with_se_last)
        for i, r in enumerate(rows):
            cost = flops.arch_cost(tiny_space, Architecture(tuple(r)),
                                   with_se_last=with_se_last)
            assert pop.macs[i] == cost.macs
            assert pop.params[i] == cost.params
            assert pop.mem_bytes[i] == cost.mem_bytes
            assert pop.flops[i] == cost.flops

    def test_count_helpers(self, tiny_space, rng):
        ops = tiny_space.sample_indices(16, rng)
        archs = tiny_space.indices_to_archs(ops)
        assert np.array_equal(flops.count_macs_many(tiny_space, ops),
                              [flops.count_macs(tiny_space, a) for a in archs])
        assert np.array_equal(flops.count_params_many(tiny_space, ops),
                              [flops.count_params(tiny_space, a) for a in archs])

    def test_tables_memoized(self, tiny_space):
        assert flops.cost_tables(tiny_space) is flops.cost_tables(tiny_space)


class TestEnergyParity:
    @settings(max_examples=25, deadline=None)
    @given(rows=ops_matrix(TINY_LAYERS))
    def test_energy_many_matches_scalar(self, rows, tiny_energy_model):
        ops = np.array(rows, dtype=np.int64)
        batched = tiny_energy_model.energy_many(ops)
        scalar = [tiny_energy_model.energy_mj(Architecture(tuple(r)))
                  for r in rows]
        assert np.array_equal(batched, np.array(scalar))

    @settings(max_examples=20, deadline=None)
    @given(rows=ops_matrix(TINY_LAYERS), seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_meter_bitstream_and_drift_parity(self, rows, seed, tiny_energy_model):
        """measure_many must match a measure() loop AND leave the meter's
        AR(1) drift state exactly where the loop would have left it."""
        ops = np.array(rows, dtype=np.int64)
        archs = [Architecture(tuple(r)) for r in rows]

        loop_meter = EnergyMeter(tiny_energy_model, np.random.default_rng(seed))
        scalar = [loop_meter.measure(a) for a in archs]

        batch_meter = EnergyMeter(tiny_energy_model, np.random.default_rng(seed))
        batched = batch_meter.measure_many(ops)

        assert np.array_equal(batched, np.array(scalar))
        assert batch_meter._drift == loop_meter._drift

    def test_meter_drift_carries_across_calls(self, tiny_energy_model, rng):
        """Two consecutive measure_many calls == one continuous campaign."""
        space = tiny_energy_model.space
        ops = space.sample_indices(10, rng)
        one = EnergyMeter(tiny_energy_model, np.random.default_rng(3))
        whole = one.measure_many(ops)
        two = EnergyMeter(tiny_energy_model, np.random.default_rng(3))
        halves = np.concatenate([two.measure_many(ops[:4]),
                                 two.measure_many(ops[4:])])
        assert np.array_equal(whole, halves)
        assert one._drift == two._drift

    def test_meter_empty_population(self, tiny_energy_model):
        meter = EnergyMeter(tiny_energy_model, np.random.default_rng(0))
        meter._drift = 1.5
        out = meter.measure_many(np.zeros((0, TINY_LAYERS), dtype=np.int64))
        assert len(out) == 0
        assert meter._drift == 1.5  # no draws consumed, no state advanced


class TestEncodeParity:
    @settings(max_examples=40, deadline=None)
    @given(rows=ops_matrix(TINY_LAYERS))
    def test_encode_many_matches_one_hot(self, rows, tiny_space):
        ops = np.array(rows, dtype=np.int64)
        batched = tiny_space.encode_many(ops)
        k = tiny_space.num_operators
        scalar = np.stack([Architecture(tuple(r)).one_hot(k).reshape(-1)
                           for r in rows])
        assert np.array_equal(batched, scalar)

    @settings(max_examples=25, deadline=None)
    @given(count=st.integers(min_value=1, max_value=64),
           seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_sample_indices_bitstream_parity(self, count, seed, tiny_space):
        """One (N, L) block draw == N sequential sample() calls."""
        block = tiny_space.sample_indices(count, np.random.default_rng(seed))
        rng = np.random.default_rng(seed)
        sequential = [tiny_space.sample(rng).op_indices for _ in range(count)]
        assert np.array_equal(block, np.array(sequential))

    def test_as_index_matrix_validates(self, tiny_space):
        bad = np.full((2, tiny_space.num_layers), 9, dtype=np.int64)
        with pytest.raises(ValueError):
            tiny_space.as_index_matrix(bad)
        with pytest.raises(ValueError):
            tiny_space.as_index_matrix(np.zeros((2, tiny_space.num_layers + 1),
                                                dtype=np.int64))


class TestLUTParity:
    def test_construction_matches_scalar_draw_order(self, tiny_latency_model):
        """The (L, K, trials) noise block must consume the generator exactly
        like the historical per-cell, per-trial scalar loop."""
        trials = 3
        lut = LatencyLUT(tiny_latency_model, np.random.default_rng(7),
                         trials=trials)
        rng = np.random.default_rng(7)
        model = tiny_latency_model
        expected = np.empty_like(lut.table)
        for l in range(model.space.num_layers):
            for k in range(model.space.num_operators):
                true = model.op_table[l, k] + model.device.isolated_overhead_ms
                samples = [max(true + rng.normal(0.0, model.device.latency_noise_ms), 0.0)
                           for _ in range(trials)]
                expected[l, k] = np.mean(samples)
        assert np.array_equal(lut.table, expected)

    def test_predict_many_matches_predict(self, tiny_latency_model, tiny_space, rng):
        lut = LatencyLUT(tiny_latency_model, np.random.default_rng(1))
        ops = tiny_space.sample_indices(20, rng)
        batched = lut.predict_many(ops)
        scalar = [lut.predict(a) for a in tiny_space.indices_to_archs(ops)]
        assert np.allclose(batched, scalar, rtol=0, atol=1e-12)

    def test_predict_many_respects_debias(self, tiny_latency_model, tiny_space, rng):
        lut = LatencyLUT(tiny_latency_model, np.random.default_rng(1))
        archs = tiny_space.sample_many(10, rng)
        measured = tiny_latency_model.measure_many(archs, rng)
        gap = lut.debias(archs, measured)
        assert lut.bias_ms == pytest.approx(gap)
        assert np.mean(lut.predict_many(archs) - measured) == pytest.approx(0.0, abs=1e-9)
