"""Tests of the roofline latency model and measurement interface."""

import numpy as np
import pytest

from repro.hardware.device import EDGE_NANO, XAVIER_MAXN, DeviceProfile
from repro.hardware.latency import LatencyModel
from repro.search_space.operators import LIGHTNAS_OPERATORS, SKIP_INDEX
from repro.search_space.space import Architecture


class TestDeviceProfile:
    def test_utilization_monotone(self):
        d = XAVIER_MAXN
        assert d.utilization(8) < d.utilization(64) < d.utilization(512)

    def test_utilization_bounded(self):
        assert 0 < XAVIER_MAXN.utilization(1) < XAVIER_MAXN.utilization(10_000) < 1

    def test_utilization_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            XAVIER_MAXN.utilization(0)

    def test_with_batch_size(self):
        d = XAVIER_MAXN.with_batch_size(1)
        assert d.batch_size == 1
        assert XAVIER_MAXN.batch_size == 8  # original untouched

    def test_with_batch_size_invalid(self):
        with pytest.raises(ValueError):
            XAVIER_MAXN.with_batch_size(0)


class TestOpLatency:
    def test_identity_skip_free(self, full_space, full_latency_model):
        geom = full_space.layer_geometries()[1]  # stride-1, same channels
        assert geom.stride == 1 and geom.in_channels == geom.out_channels
        lat = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[SKIP_INDEX], geom)
        assert lat == 0.0

    def test_typed_skip_costs_something(self, full_space, full_latency_model):
        geom = full_space.layer_geometries()[0]  # stride-2 boundary
        lat = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[SKIP_INDEX], geom)
        assert lat > 0.0

    def test_expansion_monotone(self, full_space, full_latency_model):
        geom = full_space.layer_geometries()[0]
        e3 = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[0], geom)
        e6 = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[1], geom)
        assert e6 > e3

    def test_kernel_monotone(self, full_space, full_latency_model):
        geom = full_space.layer_geometries()[0]
        k3 = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[0], geom)
        k5 = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[2], geom)
        k7 = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[4], geom)
        assert k3 < k5 < k7

    def test_early_layers_cost_more(self, full_space, full_latency_model):
        # Same operator is much more expensive at high resolution.
        geoms = full_space.layer_geometries()
        early = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[1], geoms[1])
        late = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[1], geoms[-1])
        assert early > 2 * late

    def test_se_adds_latency(self, full_space, full_latency_model):
        geom = full_space.layer_geometries()[-1]
        base = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[1], geom)
        se = full_latency_model.op_latency_ms(LIGHTNAS_OPERATORS[1], geom,
                                              with_se=True)
        assert se > base


class TestArchLatency:
    def test_monotone_in_capacity(self, full_space, full_latency_model):
        small = Architecture((0,) * 21)
        big = Architecture((5,) * 21)
        skip = Architecture((SKIP_INDEX,) * 21)
        lat = full_latency_model.latency_ms
        assert lat(skip) < lat(small) < lat(big)

    def test_layer_swap_changes_latency(self, full_space, full_latency_model):
        base = Architecture((0,) * 21)
        upgraded = Architecture((5,) + (0,) * 20)
        assert (full_latency_model.latency_ms(upgraded)
                > full_latency_model.latency_ms(base))

    def test_fusion_pairs_counted(self, full_space, full_latency_model):
        dense = Architecture((0,) * 21)
        assert full_latency_model._fusion_pairs(dense) == 20
        sparse = Architecture((0, SKIP_INDEX) * 10 + (0,))
        assert full_latency_model._fusion_pairs(sparse) == 0

    def test_se_last_layers(self, full_space, full_latency_model):
        arch = Architecture((1,) * 21)
        assert (full_latency_model.latency_ms(arch, with_se_last=9)
                > full_latency_model.latency_ms(arch))

    def test_validates(self, full_latency_model):
        with pytest.raises(ValueError):
            full_latency_model.latency_ms(Architecture((0, 1)))

    def test_deterministic(self, full_space, full_latency_model, rng):
        arch = full_space.sample(rng)
        assert (full_latency_model.latency_ms(arch)
                == full_latency_model.latency_ms(arch))

    def test_slower_device_is_slower(self, full_space, rng):
        arch = full_space.sample(rng)
        fast = LatencyModel(full_space, XAVIER_MAXN).latency_ms(arch)
        slow = LatencyModel(full_space, EDGE_NANO).latency_ms(arch)
        assert slow > fast

    def test_batch_size_scales_latency(self, full_space, rng):
        arch = full_space.sample(rng)
        b8 = LatencyModel(full_space, XAVIER_MAXN).latency_ms(arch)
        b1 = LatencyModel(full_space, XAVIER_MAXN.with_batch_size(1)).latency_ms(arch)
        assert b1 < b8


class TestMeasurement:
    def test_noise_is_small_and_unbiased(self, full_space, full_latency_model):
        rng = np.random.default_rng(0)
        arch = full_space.sample(rng)
        true = full_latency_model.latency_ms(arch)
        samples = np.array([full_latency_model.measure(arch, rng)
                            for _ in range(300)])
        assert abs(samples.mean() - true) < 0.02
        assert 0.01 < samples.std() < 0.1

    def test_measure_many_shape(self, full_space, full_latency_model, rng):
        archs = full_space.sample_many(5, rng)
        out = full_latency_model.measure_many(archs, rng)
        assert out.shape == (5,)
        assert (out > 0).all()

    def test_isolated_includes_sync_overhead(self, full_space, full_latency_model):
        rng = np.random.default_rng(1)
        geom = full_space.layer_geometries()[1]
        spec = LIGHTNAS_OPERATORS[SKIP_INDEX]
        # identity skip in-network costs 0; isolated measurement pays overhead
        samples = [full_latency_model.measure_isolated_op(spec, geom, rng)
                   for _ in range(50)]
        assert abs(np.mean(samples)
                   - full_latency_model.device.isolated_overhead_ms) < 0.02

    def test_measurements_positive(self, full_space, full_latency_model):
        rng = np.random.default_rng(2)
        arch = Architecture((SKIP_INDEX,) * 21)
        for _ in range(10):
            assert full_latency_model.measure(arch, rng) > 0
