"""Tests of the additive latency-LUT baseline (Figure 5 Right)."""

import numpy as np
import pytest

from repro.hardware.lut import LatencyLUT
from repro.search_space.space import Architecture


@pytest.fixture(scope="module")
def lut(full_latency_model):
    return LatencyLUT(full_latency_model, np.random.default_rng(0), trials=3)


class TestConstruction:
    def test_table_shape(self, lut, full_space):
        assert lut.table.shape == (21, 7)

    def test_entries_nonnegative(self, lut):
        assert (lut.table >= 0).all()

    def test_invalid_trials(self, full_latency_model):
        with pytest.raises(ValueError):
            LatencyLUT(full_latency_model, np.random.default_rng(0), trials=0)


class TestPrediction:
    def test_additivity(self, lut, full_space):
        """LUT predictions are additive by construction: changing one layer
        changes the prediction by exactly the table-entry difference."""
        base = Architecture((0,) * 21)
        changed = Architecture((5,) + (0,) * 20)
        delta = lut.predict(changed) - lut.predict(base)
        assert np.isclose(delta, lut.table[0, 5] - lut.table[0, 0])

    def test_systematic_overprediction(self, lut, full_space, full_latency_model,
                                       rng):
        """The LUT over-predicts every architecture by a consistent gap
        (the paper reports ≈11.48 ms)."""
        archs = full_space.sample_many(100, rng)
        gaps = lut.predict_many(archs) - np.array(
            [full_latency_model.latency_ms(a) for a in archs])
        assert gaps.min() > 5.0            # always over-predicting
        assert 10.0 < gaps.mean() < 13.0   # the consistent gap
        assert gaps.std() < 1.0            # and it is consistent

    def test_debias_removes_mean_gap(self, full_latency_model, full_space):
        lut = LatencyLUT(full_latency_model, np.random.default_rng(1), trials=3)
        rng = np.random.default_rng(2)
        archs = full_space.sample_many(100, rng)
        measured = np.array([full_latency_model.latency_ms(a) for a in archs])
        gap = lut.debias(archs, measured)
        assert gap > 5.0
        residual = lut.predict_many(archs) - measured
        assert abs(residual.mean()) < 1e-9

    def test_debiased_rmse_still_nonzero(self, full_latency_model, full_space):
        """Even after de-biasing, the LUT cannot see cross-layer fusion:
        the paper reports a residual RMSE of ≈0.41 ms."""
        lut = LatencyLUT(full_latency_model, np.random.default_rng(3), trials=5)
        rng = np.random.default_rng(4)
        archs = full_space.sample_many(200, rng)
        measured = np.array([full_latency_model.latency_ms(a) for a in archs])
        lut.debias(archs, measured)
        residual = lut.predict_many(archs) - measured
        rmse = float(np.sqrt((residual ** 2).mean()))
        assert 0.2 < rmse < 0.8

    def test_validates_architecture(self, lut):
        with pytest.raises(ValueError):
            lut.predict(Architecture((0, 1)))

    def test_debias_length_mismatch(self, lut, full_space, rng):
        archs = full_space.sample_many(3, rng)
        with pytest.raises(ValueError):
            lut.debias(archs, np.zeros(2))

    def test_predict_many_shape(self, lut, full_space, rng):
        archs = full_space.sample_many(4, rng)
        assert lut.predict_many(archs).shape == (4,)
