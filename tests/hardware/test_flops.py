"""Tests of the analytic FLOPs/params/memory counters."""

import numpy as np
import pytest

from repro.hardware import flops
from repro.proxy.supernet import build_standalone
from repro.search_space.macro import LayerGeometry, MacroConfig
from repro.search_space.operators import LIGHTNAS_OPERATORS, SKIP_INDEX
from repro.search_space.space import Architecture, SearchSpace

GEOM = LayerGeometry(in_channels=16, out_channels=24, stride=2, in_resolution=56)
GEOM_ID = LayerGeometry(in_channels=24, out_channels=24, stride=1, in_resolution=28)


class TestOpCost:
    def test_identity_skip_is_free(self):
        cost = flops.op_cost(LIGHTNAS_OPERATORS[SKIP_INDEX], GEOM_ID)
        assert cost.macs == 0 and cost.params == 0 and cost.mem_bytes == 0

    def test_typed_skip_pays_projection(self):
        cost = flops.op_cost(LIGHTNAS_OPERATORS[SKIP_INDEX], GEOM)
        assert cost.macs > 0 and cost.params > 0

    def test_expansion_increases_cost(self):
        e3 = flops.op_cost(LIGHTNAS_OPERATORS[0], GEOM)  # k3 e3
        e6 = flops.op_cost(LIGHTNAS_OPERATORS[1], GEOM)  # k3 e6
        assert e6.macs > e3.macs
        assert e6.params > e3.params

    def test_kernel_increases_cost(self):
        k3 = flops.op_cost(LIGHTNAS_OPERATORS[0], GEOM)
        k7 = flops.op_cost(LIGHTNAS_OPERATORS[4], GEOM)  # k7 e3
        assert k7.macs > k3.macs

    def test_kernel_affects_only_depthwise(self):
        # k3→k7 changes dw MACs by factor (49/9) on the dw part only
        k3 = flops.op_cost(LIGHTNAS_OPERATORS[0], GEOM_ID)
        k7 = flops.op_cost(LIGHTNAS_OPERATORS[4], GEOM_ID)
        hidden = GEOM_ID.in_channels * 3
        res = GEOM_ID.out_resolution
        dw_diff = hidden * (49 - 9) * res * res
        assert k7.macs - k3.macs == dw_diff

    def test_se_adds_cost(self):
        base = flops.op_cost(LIGHTNAS_OPERATORS[1], GEOM_ID)
        se = flops.op_cost(LIGHTNAS_OPERATORS[1], GEOM_ID, with_se=True)
        assert se.macs > base.macs
        assert se.params > base.params

    def test_flops_is_twice_macs(self):
        cost = flops.op_cost(LIGHTNAS_OPERATORS[1], GEOM)
        assert cost.flops == 2 * cost.macs

    def test_opcost_addition(self):
        a = flops.OpCost(1, 2, 3)
        b = flops.OpCost(10, 20, 30)
        c = a + b
        assert (c.macs, c.params, c.mem_bytes) == (11, 22, 33)


class TestArchCost:
    def test_mobile_setting_under_600m_macs(self, full_space):
        # The paper's mobile setting: multi-adds strictly under 600M.
        arch = Architecture((5,) * 21)  # the largest candidate everywhere
        assert flops.count_macs(full_space, arch) < 600e6

    def test_all_skip_is_fixed_cost_plus_projections(self, full_space):
        arch = Architecture((SKIP_INDEX,) * 21)
        fixed = flops.fixed_cost(full_space.macro)
        total = flops.arch_cost(full_space, arch)
        assert total.macs > fixed.macs  # stage-boundary projections remain
        assert total.macs < fixed.macs * 1.5

    def test_monotone_in_operator_size(self, full_space):
        small = Architecture((0,) * 21)
        big = Architecture((5,) * 21)
        assert flops.count_macs(full_space, big) > flops.count_macs(full_space, small)
        assert flops.count_params(full_space, big) > flops.count_params(
            full_space, small)

    def test_se_last_layers_increase_cost(self, full_space):
        arch = Architecture((1,) * 21)
        base = flops.arch_cost(full_space, arch)
        se = flops.arch_cost(full_space, arch, with_se_last=9)
        assert se.macs > base.macs

    def test_validates_architecture(self, full_space):
        with pytest.raises(ValueError):
            flops.arch_cost(full_space, Architecture((0,)))

    def test_params_match_instantiated_network(self, tiny_space):
        """The analytic parameter count equals the real module's count."""
        rng = np.random.default_rng(0)
        arch = tiny_space.sample(rng)
        model = build_standalone(tiny_space, arch, rng, dropout=0.0)
        analytic = flops.count_params(tiny_space, arch)
        assert model.num_parameters() == analytic

    def test_params_match_instantiated_with_se(self, tiny_space):
        rng = np.random.default_rng(1)
        arch = Architecture((1,) * tiny_space.num_layers)  # all MBConv
        model = build_standalone(tiny_space, arch, rng, dropout=0.0, with_se_last=2)
        analytic = flops.arch_cost(tiny_space, arch, with_se_last=2).params
        assert model.num_parameters() == analytic


class TestFixedCost:
    def test_positive(self, full_space):
        cost = flops.fixed_cost(full_space.macro)
        assert cost.macs > 0 and cost.params > 0 and cost.mem_bytes > 0

    def test_scales_with_resolution(self):
        base = flops.fixed_cost(MacroConfig.lightnas())
        small = flops.fixed_cost(MacroConfig.lightnas().scaled(1.0, resolution=128))
        assert small.macs < base.macs
