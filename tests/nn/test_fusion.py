"""Tests for the plan fusion pass: fused replay kernels stay bit-exact.

Every fused kernel (folded conv+BN, shared depthwise-conv workspaces,
packed elementwise chains, stacked multi-path 1x1 convs) is accepted only
after a build-time bitwise probe on the live traced buffers, so a fused
replay must be indistinguishable — bit for bit — from the unfused replay
and from the eager tape engine, in every dtype and mode.  These tests pin
that contract, the honest accounting (``kernels_fused`` /
``fusion_rejected`` counters, ``fused:<chain>`` profiler labels), the
``fusion(False)`` escape hatch, and loud invalidation under fusion.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn import functional as F
from repro.nn import ops
from repro.nn.plan import PlanError, StepProgram

finite = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False,
                   allow_infinity=False, width=64)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite)


def make_dw_model(rng, dtype="float64"):
    """1x1 conv → depthwise 3x3 → BN → ReLU6 → head.

    Exercises every fusion family that fires inside the supernet blocks:
    shared depthwise col workspaces (forward / grad-weight / clipped
    grad-input), conv+BN folding (eval plans), and elementwise chains.
    """
    with nn.dtype_scope(dtype):
        model = nn.Sequential(
            nn.Conv2d(3, 8, 1, rng=rng),
            nn.Conv2d(8, 8, 3, padding=1, groups=8, rng=rng),
            nn.BatchNorm2d(8),
            nn.ReLU6(),
            nn.GlobalAvgPool(),
            nn.Flatten(),
            nn.Linear(8, 5, rng),
        )
    return model


def train_steps(model, opt, xs, labels, program=None):
    losses = []
    targets = F.one_hot(labels, 5)
    model.train(True)
    for x in xs:
        if program is None:
            logits = model(nn.Tensor(x))
            loss = F.cross_entropy(logits, labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        else:
            def fn(ts):
                return {"loss": F.cross_entropy(model(ts["x"]),
                                                targets=ts["t"])}
            opt.zero_grad()
            out = program.run(("step", x.shape), {"x": x, "t": targets}, fn)
            opt.step()
            losses.append(float(out["loss"]))
    return losses


def run_mode(mode, dtype="float64", steps=4):
    """One seeded training run; mode is 'eager', 'fused' or 'unfused'."""
    rng_x = np.random.default_rng(3)
    xs = [rng_x.normal(size=(4, 3, 6, 6)) for _ in range(steps)]
    labels = rng_x.integers(0, 5, size=4)
    with nn.dtype_scope(dtype):
        model = make_dw_model(np.random.default_rng(0), dtype)
        opt = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
        if mode == "eager":
            losses = train_steps(model, opt, xs, labels)
            return losses, model.state_dict(), None
        program = StepProgram("t", compile_threshold=1)
        with nn.fusion(mode == "fused"):
            losses = train_steps(model, opt, xs, labels, program)
        return losses, model.state_dict(), program


class TestFusedBitParity:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_fused_training_bit_identical(self, dtype):
        el, es, _ = run_mode("eager", dtype)
        fl, fs, fprog = run_mode("fused", dtype)
        ul, us, uprog = run_mode("unfused", dtype)
        assert el == fl == ul
        for key in es:
            assert np.array_equal(es[key], fs[key]), key
            assert np.array_equal(es[key], us[key]), key
        assert fprog.stats()["kernels_fused"] > 0
        assert uprog.stats()["kernels_fused"] == 0

    def test_fused_labels_attributed(self):
        _, _, program = run_mode("fused")
        (plan,) = program._plans.values()
        labels = [label for label, _ in plan._fwd + plan._bwd]
        fused = [label for label in labels if label.startswith("fused:")]
        assert fused, labels
        # depthwise forward runs through the shared col workspace kernel
        assert any(label == "fused:conv2d_dw.cols" for label in fused)

    def test_fusion_disabled_has_no_fused_kernels(self):
        _, _, program = run_mode("unfused")
        (plan,) = program._plans.values()
        labels = [label for label, _ in plan._fwd + plan._bwd]
        assert not any(label.startswith("fused:") for label in labels)
        assert program.stats()["fusion_rejected"] == 0

    def test_multipath_1x1_stacking_bit_identical(self):
        """K sibling 1x1 convs on one input stack into a single bmm."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 4, 5, 5))

        def build():
            r = np.random.default_rng(1)
            return [nn.Conv2d(4, 6, 1, rng=r) for _ in range(3)]

        def compute(convs, x_t):
            paths = [conv(x_t) for conv in convs]
            mix = paths[0] * 0.3 + paths[1] * 0.5 + paths[2] * 0.2
            return {"loss": ops.mean(mix * mix)}

        eager_convs = build()
        outs = compute(eager_convs, nn.Tensor(x))
        outs["loss"].backward()

        plan_convs = build()
        program = StepProgram("t", compile_threshold=1)
        with nn.fusion(True):
            program.run(("k", x.shape), {"x": x},
                        lambda ts: compute(plan_convs, ts["x"]))
            out = program.run(("k", x.shape), {"x": x},
                              lambda ts: compute(plan_convs, ts["x"]))
        assert float(out["loss"]) == outs["loss"].item()
        for eager_c, plan_c in zip(eager_convs, plan_convs):
            assert np.array_equal(eager_c.weight.grad, plan_c.weight.grad)
        (plan,) = program._plans.values()
        labels = [label for label, _ in plan._fwd]
        assert any(label.startswith("fused:conv2d_1x1.x") for label in labels)


class TestBatchNormFoldParity:
    """BN folding on grad-free plans: bit parity across dtypes and modes.

    In float64 the distributed ``W·(γ/σ)`` product is usually *not*
    bit-equal to the unfolded chain, so the build-time probe is expected
    to reject the fold — the test asserts the honest outcome (parity
    always; the rejection counted) rather than that folding happened.
    """

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("training", [False, True])
    @settings(max_examples=10, deadline=None)
    @given(x=arrays((2, 3, 5, 5)), gamma=arrays((6,)), beta=arrays((6,)))
    def test_eval_fold_bit_parity(self, dtype, training, x, gamma, beta):
        def build():
            with nn.dtype_scope(dtype):
                r = np.random.default_rng(2)
                model = nn.Sequential(
                    nn.Conv2d(3, 6, 1, rng=r),
                    nn.BatchNorm2d(6),
                    nn.ReLU(),
                )
                bn = model.layers[1]
                bn.gamma.data[...] = np.asarray(gamma, bn.gamma.data.dtype)
                bn.beta.data[...] = np.asarray(beta, bn.beta.data.dtype)
                bn.running_mean[...] = 0.25
                bn.running_var[...] = 1.5
            model.train(training)
            return model

        def fwd(model, x_t):
            with nn.no_grad():
                return {"out": ops.mean(model(x_t))}

        eager_model = build()
        with nn.dtype_scope(dtype), nn.no_grad():
            eager = fwd(eager_model, nn.Tensor(x))["out"].data.copy()

        plan_model = build()
        program = StepProgram("t", compile_threshold=1)
        with nn.dtype_scope(dtype), nn.fusion(True):
            program.run(("e", x.shape), {"x": x},
                        lambda ts: fwd(plan_model, ts["x"]), grad=False)
            out = program.run(("e", x.shape), {"x": x},
                              lambda ts: fwd(plan_model, ts["x"]),
                              grad=False)
        assert np.array_equal(out["out"], eager)
        if not training:
            # the fold site must be honestly accounted either way: bound
            # as a fused kernel, or rejected by the bitwise probe
            stats = program.stats()
            assert stats["kernels_fused"] + stats["fusion_rejected"] >= 1

    def test_fold_tracks_live_bn_params(self):
        """A fold must refold from live γ/β per replay (in-place updates)."""
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        with nn.dtype_scope("float32"):
            model = nn.Sequential(nn.Conv2d(3, 6, 1, rng=rng),
                                  nn.BatchNorm2d(6))
            model.train(False)

        def fwd(ts):
            with nn.no_grad():
                return {"out": ops.mean(model(ts["x"]))}

        program = StepProgram("t", compile_threshold=1)
        with nn.dtype_scope("float32"), nn.fusion(True):
            program.run(("e", x.shape), {"x": x}, fwd, grad=False)
            bn = model.layers[1]
            bn.gamma.data *= 1.5   # in place: plans stay valid
            bn.beta.data += 0.25
            with nn.no_grad():
                expect = fwd({"x": nn.Tensor(x)})["out"].data.copy()
            out = program.run(("e", x.shape), {"x": x}, fwd, grad=False)
        assert np.array_equal(out["out"], expect)


class TestFusionInvalidation:
    def test_rebound_bn_param_raises_under_fusion(self):
        model = make_dw_model(np.random.default_rng(0))
        opt = nn.SGD(model.parameters(), lr=0.05)
        program = StepProgram("t", compile_threshold=1)
        rng_x = np.random.default_rng(3)
        xs = [rng_x.normal(size=(4, 3, 6, 6))]
        labels = rng_x.integers(0, 5, size=4)
        with nn.fusion(True):
            train_steps(model, opt, xs, labels, program)
            bn = model.layers[2]
            bn.gamma.data = bn.gamma.data.copy()  # rebind, not in-place
            with pytest.raises(PlanError, match="rebound"):
                train_steps(model, opt, xs, labels, program)

    def test_shape_change_under_same_key_raises(self):
        model = make_dw_model(np.random.default_rng(0))
        opt = nn.SGD(model.parameters(), lr=0.05)
        program = StepProgram("t", compile_threshold=1)
        rng_x = np.random.default_rng(3)
        labels = rng_x.integers(0, 5, size=4)
        targets = F.one_hot(labels, 5)
        x = rng_x.normal(size=(4, 3, 6, 6))

        def fn(ts):
            return {"loss": F.cross_entropy(model(ts["x"]),
                                            targets=ts["t"])}

        with nn.fusion(True):
            program.run(("fixed",), {"x": x, "t": targets}, fn)
            with pytest.raises(PlanError, match="shape"):
                program.run(("fixed",),
                            {"x": rng_x.normal(size=(2, 3, 6, 6)),
                             "t": targets[:2]}, fn)

    def test_fusion_env_and_context(self):
        assert nn.fusion_enabled()
        with nn.fusion(False):
            assert not nn.fusion_enabled()
            with nn.fusion(True):
                assert nn.fusion_enabled()
        assert nn.fusion_enabled()
