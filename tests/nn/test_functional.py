"""Behavioural tests of repro.nn.functional (softmax family, Gumbel, STE)."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        out = F.softmax(x).data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_large_values_stable(self):
        out = F.softmax(Tensor([[1000.0, 0.0]])).data
        assert np.isfinite(out).all()
        assert out[0, 0] > 0.999

    def test_log_softmax_consistent(self):
        x = Tensor(np.random.default_rng(2).normal(size=(4, 6)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_axis_argument(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 6)))
        out = F.softmax(x, axis=0).data
        assert np.allclose(out.sum(axis=0), 1.0)


class TestOneHotAndLosses:
    def test_one_hot_shape_and_values(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        assert out.shape == (3, 3)
        assert np.array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_one_hot_negative(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_one_hot_requires_1d(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=int))
        assert np.isclose(loss.item(), np.log(10))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_positive(self):
        rng = np.random.default_rng(4)
        loss = F.cross_entropy(Tensor(rng.normal(size=(8, 5))),
                               rng.integers(5, size=8))
        assert loss.item() > 0

    def test_mse_zero_at_target(self):
        x = Tensor([1.0, 2.0])
        assert F.mse_loss(x, np.array([1.0, 2.0])).item() == 0.0

    def test_mse_value(self):
        x = Tensor([0.0, 0.0])
        assert np.isclose(F.mse_loss(x, np.array([1.0, 3.0])).item(), 5.0)

    def test_l1_value(self):
        x = Tensor([0.0, 0.0])
        assert np.isclose(F.l1_loss(x, np.array([1.0, -3.0])).item(), 2.0)


class TestGumbel:
    def test_noise_shape(self):
        g = F.gumbel_noise((100, 7), np.random.default_rng(0))
        assert g.shape == (100, 7)

    def test_noise_moments(self):
        g = F.gumbel_noise((200_000,), np.random.default_rng(0))
        # Gumbel(0,1): mean = Euler-Mascheroni ≈ 0.5772, var = π²/6 ≈ 1.6449
        assert abs(g.mean() - 0.5772) < 0.02
        assert abs(g.var() - 1.6449) < 0.05

    def test_gumbel_softmax_simplex(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        out = F.gumbel_softmax(x, tau=1.0, rng=np.random.default_rng(1)).data
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert (out >= 0).all()

    def test_low_temperature_concentrates(self):
        x = Tensor(np.array([[2.0, 0.0, 0.0]]))
        out = F.gumbel_softmax(x, tau=0.05).data  # no noise
        assert out[0, 0] > 0.999

    def test_high_temperature_flattens(self):
        x = Tensor(np.array([[2.0, 0.0, 0.0]]))
        out = F.gumbel_softmax(x, tau=100.0).data
        assert out.max() - out.min() < 0.02

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            F.gumbel_softmax(Tensor([[1.0]]), tau=0.0)

    def test_gumbel_max_sampling_frequencies(self):
        # argmax(log p + G) must sample with probabilities p
        rng = np.random.default_rng(5)
        p = np.array([0.6, 0.3, 0.1])
        log_p = np.log(p)
        counts = np.zeros(3)
        n = 20000
        noise = F.gumbel_noise((n, 3), rng)
        picks = (log_p + noise).argmax(axis=1)
        for k in range(3):
            counts[k] = (picks == k).mean()
        assert np.allclose(counts, p, atol=0.02)


class TestHardBinarizeSTE:
    def test_forward_is_one_hot(self):
        probs = F.softmax(Tensor(np.random.default_rng(0).normal(size=(6, 7))))
        hard = F.hard_binarize_ste(probs).data
        assert np.allclose(hard.sum(axis=-1), 1.0)
        assert set(np.unique(hard)) <= {0.0, 1.0}

    def test_forward_selects_argmax(self):
        probs = Tensor(np.array([[0.1, 0.7, 0.2]]))
        hard = F.hard_binarize_ste(probs).data
        assert hard[0, 1] == 1.0

    def test_backward_is_identity(self):
        x = Tensor(np.array([[0.2, 0.5, 0.3]]), requires_grad=True)
        hard = F.hard_binarize_ste(x)
        seed = np.array([[1.0, 2.0, 3.0]])
        hard.backward(seed)
        assert np.allclose(x.grad, seed)

    def test_gradient_chains_through_softmax(self):
        alpha = Tensor(np.zeros((2, 3)), requires_grad=True)
        hard = F.hard_binarize_ste(F.softmax(alpha))
        (hard * Tensor(np.arange(6.0).reshape(2, 3))).sum().backward()
        assert alpha.grad is not None
        assert alpha.grad.shape == (2, 3)
