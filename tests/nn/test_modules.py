"""Tests of repro.nn.modules: registration, layers, state dicts."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModuleRegistration:
    def test_parameters_recursive(self, rng):
        model = nn.Sequential(nn.Linear(4, 8, rng), nn.ReLU(), nn.Linear(8, 2, rng))
        # 2 weights + 2 biases
        assert len(model.parameters()) == 4

    def test_named_parameters_prefixes(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng))
        names = [n for n, _ in model.named_parameters()]
        assert "0.weight" in names and "0.bias" in names

    def test_num_parameters(self, rng):
        layer = nn.Linear(3, 5, rng)
        assert layer.num_parameters() == 3 * 5 + 5

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.BatchNorm2d(3), nn.Sequential(nn.BatchNorm2d(3)))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self, rng):
        layer = nn.Linear(2, 2, rng)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinear:
    def test_shapes(self, rng):
        layer = nn.Linear(4, 7, rng)
        assert layer(Tensor(np.zeros((3, 4)))).shape == (3, 7)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 7, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linearity(self, rng):
        layer = nn.Linear(3, 2, rng, bias=False)
        x = np.random.default_rng(1).normal(size=(2, 3))
        out1 = layer(Tensor(x)).data
        out2 = layer(Tensor(2 * x)).data
        assert np.allclose(out2, 2 * out1)


class TestConv2d:
    def test_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 3, rng, stride=2, padding=1)
        assert conv(Tensor(np.zeros((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_depthwise_params(self, rng):
        conv = nn.Conv2d(8, 8, 3, rng, groups=8)
        assert conv.weight.shape == (8, 1, 3, 3)

    def test_invalid_groups(self, rng):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 8, 3, rng, groups=2)

    def test_pointwise_equals_linear_map(self, rng):
        conv = nn.Conv2d(4, 6, 1, rng)
        x = np.random.default_rng(2).normal(size=(1, 4, 3, 3))
        out = conv(Tensor(x)).data
        w = conv.weight.data[:, :, 0, 0]
        expected = np.einsum("oc,nchw->nohw", w, x)
        assert np.allclose(out, expected)


class TestBatchNorm:
    def test_train_normalises(self, rng):
        bn = nn.BatchNorm2d(3)
        x = np.random.default_rng(3).normal(loc=5.0, scale=2.0, size=(8, 3, 4, 4))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_update(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = np.full((4, 2, 2, 2), 10.0)
        bn(Tensor(x))
        assert np.allclose(bn.running_mean, 5.0)  # 0.5*0 + 0.5*10

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        for _ in range(200):
            bn(Tensor(np.random.default_rng(4).normal(size=(16, 2, 3, 3)) + 3.0))
        bn.eval()
        x = np.full((1, 2, 2, 2), 3.0)
        out = bn(Tensor(x)).data
        assert np.allclose(out, 0.0, atol=0.2)

    def test_eval_no_stat_update(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(np.ones((2, 2, 2, 2))))
        assert np.array_equal(bn.running_mean, before)

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(Tensor(np.zeros((2, 2))))

    def test_gamma_beta_trainable(self, rng):
        bn = nn.BatchNorm2d(3)
        out = bn(Tensor(np.random.default_rng(5).normal(size=(2, 3, 2, 2)))).sum()
        out.backward()
        assert bn.gamma.grad is not None and bn.beta.grad is not None


class TestDropout:
    def test_eval_identity(self, rng):
        drop = nn.Dropout(0.5, rng)
        drop.eval()
        x = np.ones((4, 4))
        assert np.array_equal(drop(Tensor(x)).data, x)

    def test_train_scales(self, rng):
        drop = nn.Dropout(0.5, np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 100)))).data
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert abs((out > 0).mean() - 0.5) < 0.05

    def test_p_zero_identity(self, rng):
        drop = nn.Dropout(0.0, rng)
        x = np.ones((3, 3))
        assert np.array_equal(drop(Tensor(x)).data, x)

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, rng)


class TestSqueezeExcite:
    def test_preserves_shape(self, rng):
        se = nn.SqueezeExcite(8, rng)
        assert se(Tensor(np.random.default_rng(6).normal(size=(2, 8, 4, 4)))).shape \
            == (2, 8, 4, 4)

    def test_output_bounded_by_input(self, rng):
        se = nn.SqueezeExcite(4, rng)
        x = np.abs(np.random.default_rng(7).normal(size=(1, 4, 3, 3)))
        out = se(Tensor(x)).data
        assert (out <= x + 1e-12).all()  # sigmoid gate ∈ (0, 1)
        assert (out >= 0).all()


class TestContainersAndPooling:
    def test_identity(self):
        x = Tensor(np.ones((2, 2)))
        assert nn.Identity()(x) is x

    def test_global_avg_pool(self):
        x = np.arange(16.0).reshape(1, 2, 2, 4)
        out = nn.GlobalAvgPool()(Tensor(x)).data
        assert out.shape == (1, 2)
        assert np.allclose(out[0], [x[0, 0].mean(), x[0, 1].mean()])

    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.zeros((3, 2, 2, 2))))
        assert out.shape == (3, 8)

    def test_sequential_iteration_and_indexing(self, rng):
        a, b = nn.ReLU(), nn.ReLU6()
        seq = nn.Sequential(a, b)
        assert len(seq) == 2
        assert seq[0] is a
        assert list(seq) == [a, b]


class TestStateDict:
    def test_round_trip(self, rng):
        model = nn.Sequential(nn.Linear(3, 4, rng), nn.BatchNorm2d(4))
        state = model.state_dict()
        model2 = nn.Sequential(nn.Linear(3, 4, np.random.default_rng(9)),
                               nn.BatchNorm2d(4))
        model2.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(model.named_parameters(),
                                      model2.named_parameters()):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_includes_buffers(self, rng):
        bn = nn.BatchNorm2d(2)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_missing_key_raises(self, rng):
        layer = nn.Linear(2, 2, rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({})

    def test_shape_mismatch_raises(self, rng):
        layer = nn.Linear(2, 2, rng)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_state_dict_copies(self, rng):
        layer = nn.Linear(2, 2, rng)
        state = layer.state_dict()
        state["weight"][:] = 99.0
        assert not np.allclose(layer.weight.data, 99.0)
