"""Tests for the step compiler: trace-once/replay-many execution plans.

The contract under test is strict bit-parity: replaying a compiled
:class:`repro.nn.plan.StepPlan` must produce exactly the arrays the eager
tape engine produces — same loss bits, same gradient bits, same optimizer
trajectories — across dtypes and with the fast conv kernels disabled.
Invalidation must be loud: shape changes, input-set changes, rebound
parameter storage, and drifted sampled paths raise :class:`PlanError`
instead of silently replaying stale computation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn import functional as F
from repro.nn import ops
from repro.nn.plan import BufferArena, PlanError, StepProgram


finite = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                   allow_infinity=False, width=64)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite)


def make_model(rng, dtype="float64"):
    """Conv → BN → ReLU6 → pool → dropout → linear: every stateful path."""
    with nn.dtype_scope(dtype):
        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1, rng=rng),
            nn.BatchNorm2d(8),
            nn.ReLU6(),
            nn.GlobalAvgPool(),
            nn.Flatten(),
            nn.Dropout(0.3, np.random.default_rng(11)),
            nn.Linear(8, 5, rng),
        )
    return model


def train_steps(model, opt, xs, labels, program=None):
    """Run len(xs) SGD steps; planned when ``program`` is given."""
    losses = []
    targets = F.one_hot(labels, 5)
    model.train(True)
    for x in xs:
        if program is None:
            logits = model(nn.Tensor(x))
            loss = F.cross_entropy(logits, labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        else:
            def fn(ts):
                return {"loss": F.cross_entropy(model(ts["x"]),
                                                targets=ts["t"])}
            opt.zero_grad()
            out = program.run(("step", x.shape), {"x": x, "t": targets}, fn)
            opt.step()
            losses.append(float(out["loss"]))
    return losses


def run_pair(dtype="float64", steps=4, fast=True):
    """Identical seeded runs, eager vs planned; returns both (loss, state)."""
    rng_x = np.random.default_rng(3)
    xs = [rng_x.normal(size=(4, 3, 6, 6)) for _ in range(steps)]
    labels = rng_x.integers(0, 5, size=4)
    results = []
    for planned in (False, True):
        with nn.dtype_scope(dtype), ops.fast_kernels(fast):
            model = make_model(np.random.default_rng(0), dtype)
            opt = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
            program = (StepProgram("t", compile_threshold=1)
                       if planned else None)
            losses = train_steps(model, opt, xs, labels, program)
            results.append((losses, model.state_dict()))
    return results


class TestReplayBitParity:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_training_bit_identical(self, dtype):
        (el, es), (pl, ps) = run_pair(dtype=dtype)
        assert el == pl
        assert set(es) == set(ps)
        for key in es:
            assert np.array_equal(es[key], ps[key]), key

    def test_bit_identical_without_fast_kernels(self):
        (el, es), (pl, ps) = run_pair(fast=False)
        assert el == pl
        for key in es:
            assert np.array_equal(es[key], ps[key]), key

    def test_replay_allocates_no_tensors(self):
        rng_x = np.random.default_rng(3)
        xs = [rng_x.normal(size=(4, 3, 6, 6)) for _ in range(3)]
        labels = rng_x.integers(0, 5, size=4)
        model = make_model(np.random.default_rng(0))
        opt = nn.SGD(model.parameters(), lr=0.05)
        program = StepProgram("t", compile_threshold=1)
        train_steps(model, opt, xs[:1], labels, program)  # compile
        before = nn.tensor_allocations()
        train_steps(model, opt, xs[1:], labels, program)  # replays
        assert nn.tensor_allocations() == before
        assert program.stats()["replays"] == 2

    @settings(max_examples=15, deadline=None)
    @given(arrays((3, 4)), arrays((3, 4)), arrays((4, 2)))
    def test_elementwise_chain_gradients_bitwise(self, a, b, w):
        def build():
            pa = nn.Parameter(a.copy(), name="a")
            pb = nn.Parameter(b.copy(), name="b")
            pw = nn.Parameter(w.copy(), name="w")
            return pa, pb, pw

        def compute(pa, pb, pw, x_t):
            h = ops.relu(pa * x_t + pb)
            h = ops.matmul(ops.tanh(h), pw)
            return {"loss": ops.mean(h * h)}

        x = np.linspace(-1.0, 1.0, 12).reshape(3, 4)
        ea, eb, ew = build()
        outs = compute(ea, eb, ew, nn.Tensor(x))
        outs["loss"].backward()

        pa, pb, pw = build()
        program = StepProgram("t", compile_threshold=1)
        program.run(("k", x.shape), {"x": x},
                    lambda ts: compute(pa, pb, pw, ts["x"]))
        # replay once more on the same inputs: grads must not accumulate
        # or drift (each replay recomputes the leaf slots from scratch)
        for p in (pa, pb, pw):
            p.zero_grad()
        out = program.run(("k", x.shape), {"x": x},
                          lambda ts: compute(pa, pb, pw, ts["x"]))
        assert float(out["loss"]) == outs["loss"].item()
        for eager_p, plan_p in ((ea, pa), (eb, pb), (ew, pw)):
            assert np.array_equal(eager_p.grad, plan_p.grad)


class TestInvalidation:
    def _program_with_plan(self):
        model = make_model(np.random.default_rng(0))
        opt = nn.SGD(model.parameters(), lr=0.05)
        program = StepProgram("t", compile_threshold=1)
        rng_x = np.random.default_rng(3)
        xs = [rng_x.normal(size=(4, 3, 6, 6))]
        labels = rng_x.integers(0, 5, size=4)
        train_steps(model, opt, xs, labels, program)
        return model, opt, program, labels

    def test_changed_batch_shape_compiles_new_plan(self):
        model, opt, program, labels = self._program_with_plan()
        assert program.stats()["plans_compiled"] == 1
        xs = [np.random.default_rng(5).normal(size=(2, 3, 6, 6))]
        train_steps(model, opt, xs, labels[:2], program)
        assert program.stats()["plans_compiled"] == 2
        assert program.stats()["replays"] == 0

    def test_shape_mismatch_under_same_key_raises(self):
        model, opt, program, labels = self._program_with_plan()
        bad = np.zeros((2, 3, 6, 6))
        targets = F.one_hot(labels[:2], 5)
        opt.zero_grad()
        with pytest.raises(PlanError, match="shape"):
            program.run(("step", (4, 3, 6, 6)), {"x": bad, "t": targets},
                        lambda ts: {"loss": F.cross_entropy(
                            model(ts["x"]), targets=ts["t"])})

    def test_changed_input_names_raise(self):
        model, opt, program, labels = self._program_with_plan()
        x = np.zeros((4, 3, 6, 6))
        opt.zero_grad()
        with pytest.raises(PlanError, match="inputs changed"):
            program.run(("step", x.shape), {"x": x},
                        lambda ts: {"loss": F.cross_entropy(
                            model(ts["x"]), labels)})

    def test_rebound_parameter_storage_raises(self):
        model, opt, program, labels = self._program_with_plan()
        weight = model.layers[0].weight
        weight.data = weight.data.copy()  # rebind, not in-place
        rng_x = np.random.default_rng(3)
        xs = [rng_x.normal(size=(4, 3, 6, 6))]
        with pytest.raises(PlanError, match="rebound"):
            train_steps(model, opt, xs, labels, program)

    def test_stale_leaf_grad_raises_at_trace(self):
        model = make_model(np.random.default_rng(0))
        opt = nn.SGD(model.parameters(), lr=0.05)
        rng_x = np.random.default_rng(3)
        xs = [rng_x.normal(size=(4, 3, 6, 6))]
        labels = rng_x.integers(0, 5, size=4)
        train_steps(model, None if False else opt, xs, labels)  # eager step
        program = StepProgram("t", compile_threshold=1)
        with pytest.raises(PlanError, match="zero_grad"):
            # eager left .grad set on every parameter; tracing demands a
            # clean slate — train_steps zeroes before run, so call run raw
            x, targets = xs[0], F.one_hot(labels, 5)
            program.run(("step", x.shape), {"x": x, "t": targets},
                        lambda ts: {"loss": F.cross_entropy(
                            model(ts["x"]), targets=ts["t"])})

    def test_lru_eviction_recycles_workspaces(self):
        model = make_model(np.random.default_rng(0))
        opt = nn.SGD(model.parameters(), lr=0.05)
        program = StepProgram("t", capacity=2, compile_threshold=1)
        rng_x = np.random.default_rng(3)
        labels = rng_x.integers(0, 5, size=4)
        for n in (2, 3, 4, 5):  # four distinct batch shapes, capacity 2
            xs = [rng_x.normal(size=(n, 3, 6, 6))]
            train_steps(model, opt, xs, labels[:n] if n <= 4
                        else rng_x.integers(0, 5, size=n), program)
        stats = program.stats()
        assert stats["plans_compiled"] == 4
        assert stats["plan_evictions"] == 2
        assert len(program) == 2
        # evicted plans returned their workspaces to the arena pool
        assert program.arena.hits + program.arena.misses > 0

    def test_sampled_path_drift_raises(self):
        # a gates tensor whose argmax drives a getitem lookup is guarded:
        # replaying with probabilities whose argmax differs must be loud
        w = nn.Parameter(np.ones((3, 3)), name="w")

        def fn(ts):
            relaxed = F.softmax(ts["scores"] * w, axis=-1)
            hard = F.hard_binarize_ste(relaxed, axis=-1)
            picked = hard[0]  # getitem on the STE output → guarded
            return {"loss": ops.mean(picked * picked)}

        program = StepProgram("t", compile_threshold=1)
        scores = np.array([[3.0, 1.0, 0.5],
                           [0.2, 2.0, 0.1],
                           [0.3, 0.4, 4.0]])
        program.run(("k", scores.shape), {"scores": scores}, fn)
        w.zero_grad()
        flipped = scores[:, ::-1].copy()  # argmax moves to another column
        with pytest.raises(PlanError, match="drifted"):
            program.run(("k", scores.shape), {"scores": flipped}, fn)


class TestProgramModes:
    def test_plans_context_falls_back_to_eager(self):
        model = make_model(np.random.default_rng(0))
        opt = nn.SGD(model.parameters(), lr=0.05)
        program = StepProgram("t", compile_threshold=1)
        rng_x = np.random.default_rng(3)
        xs = [rng_x.normal(size=(4, 3, 6, 6))]
        labels = rng_x.integers(0, 5, size=4)
        with nn.plans(False):
            assert not nn.plans_enabled()
            train_steps(model, opt, xs, labels, program)
        assert nn.plans_enabled()
        stats = program.stats()
        assert stats["eager_steps"] == 1
        assert stats["plans_compiled"] == 0

    def test_compile_threshold_defers_tracing(self):
        model = make_model(np.random.default_rng(0))
        opt = nn.SGD(model.parameters(), lr=0.05)
        program = StepProgram("t", compile_threshold=2)
        rng_x = np.random.default_rng(3)
        xs = [rng_x.normal(size=(4, 3, 6, 6)) for _ in range(3)]
        labels = rng_x.integers(0, 5, size=4)
        train_steps(model, opt, xs, labels, program)
        stats = program.stats()
        assert stats["eager_steps"] == 1   # first sighting stays eager
        assert stats["plans_compiled"] == 1  # second sighting traces
        assert stats["replays"] == 1       # third replays

    def test_nested_trace_rejected(self):
        program = StepProgram("t", compile_threshold=1)
        inner = StepProgram("i", compile_threshold=1)
        p = nn.Parameter(np.ones(3), name="p")

        def fn(ts):
            inner.run(("k",), {"x": np.ones(3)},
                      lambda its: {"loss": ops.mean(its["x"] * p)})
            return {"loss": ops.mean(ts["x"] * p)}

        with pytest.raises(PlanError, match="nest"):
            program.run(("outer",), {"x": np.ones(3)}, fn)

    def test_arena_reuses_buffers_across_release(self):
        arena = BufferArena()
        a = arena.request((4, 4), np.dtype(np.float64))
        arena.release(a)
        b = arena.request((4, 4), np.dtype(np.float64))
        assert b is a
        assert arena.hits == 1 and arena.misses == 1
