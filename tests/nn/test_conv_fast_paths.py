"""The specialized conv kernels vs the generic im2col path.

Every fast path (depthwise, 1×1) must agree with the generic engine —
property-tested over random shapes/strides/paddings with Hypothesis and
gradient-checked against central finite differences at float64 tolerance.
Also pins the tape-free contract: forwards under ``nn.no_grad()`` allocate
zero backward closures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import Tensor, ops

RTOL = 1e-10
ATOL = 1e-12


def _run_conv(x, w, b, stride, padding, groups, fast):
    """One forward+backward through conv2d, returning (out, gx, gw, gb)."""
    with ops.fast_kernels(fast):
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        bt = Tensor(b, requires_grad=True) if b is not None else None
        out = ops.conv2d(xt, wt, bt, stride=stride, padding=padding,
                         groups=groups)
        # non-uniform cotangent so layout bugs can't hide behind symmetry
        cotangent = np.arange(out.data.size, dtype=np.float64)
        cotangent = cotangent.reshape(out.shape) / out.data.size
        (out * Tensor(cotangent)).sum().backward()
    gb = bt.grad if bt is not None else None
    return out.data, xt.grad, wt.grad, gb


def assert_fast_matches_generic(x, w, b, stride=1, padding=0, groups=1):
    fast = _run_conv(x, w, b, stride, padding, groups, fast=True)
    slow = _run_conv(x, w, b, stride, padding, groups, fast=False)
    for name, f, s in zip(("out", "gx", "gw", "gb"), fast, slow):
        if f is None and s is None:
            continue
        assert np.allclose(f, s, rtol=RTOL, atol=ATOL), (
            f"{name}: max err {np.abs(f - s).max():.3e}"
        )


def conv_case(draw, *, depthwise=False, pointwise=False, grouped=False):
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    n = draw(st.integers(1, 3))
    stride = draw(st.sampled_from([1, 2]))
    if pointwise:
        c_in, k, padding, groups = draw(st.integers(1, 6)), 1, 0, 1
        c_out = draw(st.integers(1, 6))
    elif depthwise:
        c_in = draw(st.integers(1, 6))
        c_out, groups = c_in, c_in
        k = draw(st.sampled_from([3, 5]))
        padding = draw(st.integers(0, k // 2))
    elif grouped:
        groups = draw(st.sampled_from([2, 3]))
        c_in = groups * draw(st.integers(1, 2))
        c_out = groups * draw(st.integers(1, 2))
        k = 3
        padding = draw(st.integers(0, 1))
    else:
        c_in, c_out, groups = draw(st.integers(1, 4)), draw(st.integers(1, 4)), 1
        k = draw(st.sampled_from([1, 3]))
        padding = draw(st.integers(0, 1))
    h = draw(st.integers(max(k - padding * 2, stride), 8))
    x = rng.normal(size=(n, c_in, h, h))
    w = rng.normal(size=(c_out, c_in // groups, k, k))
    b = rng.normal(size=(c_out,)) if draw(st.booleans()) else None
    return x, w, b, stride, padding, groups


class TestFastMatchesGeneric:
    """Forward and all three gradients agree between engines."""

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_depthwise(self, data):
        x, w, b, stride, padding, groups = conv_case(data.draw, depthwise=True)
        assert_fast_matches_generic(x, w, b, stride, padding, groups)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_pointwise_1x1(self, data):
        x, w, b, stride, padding, groups = conv_case(data.draw, pointwise=True)
        assert_fast_matches_generic(x, w, b, stride, padding, groups)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_dense_strided_padded(self, data):
        x, w, b, stride, padding, groups = conv_case(data.draw)
        assert_fast_matches_generic(x, w, b, stride, padding, groups)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_grouped_not_depthwise(self, data):
        x, w, b, stride, padding, groups = conv_case(data.draw, grouped=True)
        assert_fast_matches_generic(x, w, b, stride, padding, groups)

    def test_supernet_shapes_bit_identical(self):
        """At the layouts the tiny supernet actually runs, the match is
        exact to the bit — the property the golden-trajectory test rests on."""
        rng = np.random.default_rng(0)
        cases = [
            # (n, c_in, c_out, h, k, stride, groups)
            (16, 24, 144, 4, 1, 1, 1),     # expand 1×1
            (16, 144, 24, 4, 1, 1, 1),     # project 1×1
            (16, 48, 48, 8, 3, 1, 48),     # depthwise k3 s1
            (16, 72, 72, 8, 5, 2, 72),     # depthwise k5 s2
        ]
        for n, c_in, c_out, h, k, stride, groups in cases:
            x = rng.normal(size=(n, c_in, h, h))
            w = rng.normal(size=(c_out, c_in // groups, k, k))
            fast = _run_conv(x, w, None, stride, k // 2, groups, fast=True)
            slow = _run_conv(x, w, None, stride, k // 2, groups, fast=False)
            for name, f, s in zip(("out", "gx", "gw"), fast, slow):
                assert np.array_equal(f, s), f"{name} not bit-identical"


def numeric_grad(fn, x, h=1e-6):
    grad = np.zeros_like(x)
    flat, gflat = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + h
        hi = fn(x)
        flat[i] = orig - h
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * h)
    return grad


class TestFiniteDifferences:
    """The fast kernels checked directly against central differences."""

    @pytest.mark.parametrize("case", [
        dict(x=(1, 3, 5, 5), w=(3, 1, 3, 3), stride=1, padding=1, groups=3),
        dict(x=(2, 4, 6, 6), w=(4, 1, 3, 3), stride=2, padding=1, groups=4),
        dict(x=(1, 2, 7, 7), w=(2, 1, 5, 5), stride=1, padding=2, groups=2),
        dict(x=(1, 3, 4, 4), w=(5, 3, 1, 1), stride=1, padding=0, groups=1),
        dict(x=(2, 3, 5, 5), w=(4, 3, 1, 1), stride=2, padding=0, groups=1),
    ], ids=["dw_k3_s1", "dw_k3_s2", "dw_k5_pad2", "pw_s1", "pw_s2"])
    @pytest.mark.parametrize("wrt", [0, 1])
    def test_fast_kernel_gradients(self, case, wrt):
        rng = np.random.default_rng(7)
        arrays = [rng.normal(size=case["x"]), rng.normal(size=case["w"])]
        kwargs = dict(stride=case["stride"], padding=case["padding"],
                      groups=case["groups"])

        def scalar(a):
            inputs = [v.copy() for v in arrays]
            inputs[wrt] = a
            with ops.fast_kernels(True):
                out = ops.conv2d(Tensor(inputs[0]), Tensor(inputs[1]),
                                 **kwargs)
            return float(out.sum().data)

        with ops.fast_kernels(True):
            tensors = [Tensor(a, requires_grad=(i == wrt))
                       for i, a in enumerate(arrays)]
            ops.conv2d(tensors[0], tensors[1], **kwargs).sum().backward()
        analytic = tensors[wrt].grad
        numeric = numeric_grad(scalar, arrays[wrt].copy())
        assert np.allclose(analytic, numeric, rtol=1e-5, atol=1e-7), (
            f"max err {np.abs(analytic - numeric).max():.2e}"
        )


class TestTapeFree:
    """Eval-mode forwards must allocate zero backward state."""

    def _assert_leaf(self, out):
        assert out._parents == ()
        assert out._backward is None
        assert not out.requires_grad

    def test_conv_fast_paths_no_tape(self):
        rng = np.random.default_rng(0)
        with nn.no_grad():
            x = Tensor(rng.normal(size=(2, 4, 6, 6)), requires_grad=True)
            w_dw = Tensor(rng.normal(size=(4, 1, 3, 3)), requires_grad=True)
            w_pw = Tensor(rng.normal(size=(3, 4, 1, 1)), requires_grad=True)
            self._assert_leaf(ops.conv2d(x, w_dw, padding=1, groups=4))
            self._assert_leaf(ops.conv2d(x, w_pw))

    def test_model_eval_forward_builds_no_graph(self):
        """A whole supernet eval forward is one flat sea of leaf tensors."""
        from repro.proxy.supernet import SuperNet
        from repro.search_space.macro import MacroConfig
        from repro.search_space.space import SearchSpace

        space = SearchSpace(MacroConfig.tiny())
        net = SuperNet(space, np.random.default_rng(0))
        net.eval()
        arch = space.sample(np.random.default_rng(1))
        r = space.macro.input_resolution
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3, r, r)))
        with nn.no_grad():
            out = net.forward_arch(x, arch)
        self._assert_leaf(out)
