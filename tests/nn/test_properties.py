"""Hypothesis property tests for the autodiff core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, ops
from repro.nn import functional as F

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                          allow_infinity=False, width=64)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


@settings(max_examples=40, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_add_commutative(a, b):
    assert np.allclose(ops.add(Tensor(a), Tensor(b)).data,
                       ops.add(Tensor(b), Tensor(a)).data)


@settings(max_examples=40, deadline=None)
@given(arrays((4,)), arrays((4,)), arrays((4,)))
def test_add_associative(a, b, c):
    left = ops.add(ops.add(Tensor(a), Tensor(b)), Tensor(c)).data
    right = ops.add(Tensor(a), ops.add(Tensor(b), Tensor(c))).data
    assert np.allclose(left, right)


@settings(max_examples=40, deadline=None)
@given(arrays((5,)))
def test_neg_involution(a):
    assert np.allclose(ops.neg(ops.neg(Tensor(a))).data, a)


@settings(max_examples=40, deadline=None)
@given(arrays((2, 6)))
def test_softmax_simplex_invariant(a):
    out = F.softmax(Tensor(a)).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@settings(max_examples=40, deadline=None)
@given(arrays((2, 6)), st.floats(min_value=0.01, max_value=50.0))
def test_gumbel_softmax_simplex_invariant(a, tau):
    out = F.gumbel_softmax(Tensor(a), tau=tau,
                           rng=np.random.default_rng(0)).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@settings(max_examples=40, deadline=None)
@given(arrays((3, 5)))
def test_hard_binarize_exactly_one_hot(a):
    hard = F.hard_binarize_ste(F.softmax(Tensor(a))).data
    assert np.allclose(hard.sum(axis=-1), 1.0)
    assert np.all((hard == 0.0) | (hard == 1.0))


@settings(max_examples=40, deadline=None)
@given(arrays((4, 3)))
def test_sum_matches_numpy(a):
    assert np.allclose(ops.sum_(Tensor(a)).data, a.sum())
    assert np.allclose(ops.sum_(Tensor(a), axis=0).data, a.sum(axis=0))
    assert np.allclose(ops.mean(Tensor(a), axis=1).data, a.mean(axis=1))


@settings(max_examples=40, deadline=None)
@given(arrays((2, 3)), arrays((3, 2)))
def test_matmul_matches_numpy(a, b):
    assert np.allclose(ops.matmul(Tensor(a), Tensor(b)).data, a @ b)


@settings(max_examples=30, deadline=None)
@given(arrays((6,)))
def test_relu_idempotent(a):
    once = ops.relu(Tensor(a)).data
    twice = ops.relu(ops.relu(Tensor(a))).data
    assert np.allclose(once, twice)


@settings(max_examples=30, deadline=None)
@given(arrays((6,)))
def test_relu6_bounded(a):
    out = ops.relu6(Tensor(a)).data
    assert np.all(out >= 0) and np.all(out <= 6.0)


@settings(max_examples=30, deadline=None)
@given(arrays((2, 2, 4, 4)), st.integers(min_value=1, max_value=3))
def test_pad2d_shape_and_content(a, p):
    out = ops.pad2d(Tensor(a), p).data
    assert out.shape == (2, 2, 4 + 2 * p, 4 + 2 * p)
    assert np.allclose(out[:, :, p:-p, p:-p], a)
    assert np.isclose(out.sum(), a.sum())  # zero padding adds nothing


@settings(max_examples=20, deadline=None)
@given(arrays((3, 4)))
def test_reshape_round_trip(a):
    t = ops.reshape(ops.reshape(Tensor(a), (12,)), (3, 4))
    assert np.allclose(t.data, a)


@settings(max_examples=20, deadline=None)
@given(arrays((3, 4)))
def test_transpose_involution(a):
    t = ops.transpose(ops.transpose(Tensor(a)))
    assert np.allclose(t.data, a)


@settings(max_examples=20, deadline=None)
@given(arrays((4, 4)))
def test_gradient_of_sum_is_ones(a):
    t = Tensor(a, requires_grad=True)
    ops.sum_(t).backward()
    assert np.allclose(t.grad, np.ones_like(a))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=9))
def test_cross_entropy_bounded_below(label):
    rng = np.random.default_rng(label)
    logits = Tensor(rng.normal(size=(1, 10)))
    loss = F.cross_entropy(logits, np.array([label]))
    assert loss.item() >= 0.0
