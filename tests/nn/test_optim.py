"""Tests of optimizers and schedules in repro.nn.optim."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


def quadratic_step(opt, param, target=0.0):
    """One optimisation step on f(p) = 0.5 (p - target)^2."""
    loss = ((param - target) * (param - target)) * 0.5
    loss = loss.sum()
    opt.zero_grad()
    loss.backward()
    opt.step()
    return float(loss.data)


class TestSGD:
    def test_converges_on_quadratic(self):
        p = nn.Parameter([5.0])
        opt = nn.SGD([p], lr=0.1)
        for _ in range(200):
            quadratic_step(opt, p)
        assert abs(p.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = nn.Parameter([5.0])
            opt = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                last = quadratic_step(opt, p)
            losses[momentum] = last
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = nn.Parameter([1.0])
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        # zero gradient; only decay acts
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_none_grad(self):
        p = nn.Parameter([1.0])
        opt = nn.SGD([p], lr=0.1)
        opt.step()  # no backward happened
        assert p.data[0] == 1.0

    def test_exact_update_rule(self):
        p = nn.Parameter([2.0])
        opt = nn.SGD([p], lr=0.5)
        p.grad = np.array([3.0])
        opt.step()
        assert np.isclose(p.data[0], 2.0 - 0.5 * 3.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter([1.0])], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = nn.Parameter([5.0])
        opt = nn.Adam([p], lr=0.3)
        for _ in range(300):
            quadratic_step(opt, p)
        assert abs(p.data[0]) < 1e-3

    def test_first_step_magnitude_close_to_lr(self):
        # With bias correction the first Adam step ≈ lr regardless of grad scale.
        for scale in (0.01, 100.0):
            p = nn.Parameter([0.0])
            opt = nn.Adam([p], lr=0.1)
            p.grad = np.array([scale])
            opt.step()
            assert np.isclose(abs(p.data[0]), 0.1, rtol=1e-4)

    def test_weight_decay(self):
        p = nn.Parameter([1.0])
        opt = nn.Adam([p], lr=0.01, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_trains_small_network(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(2, 8, rng), nn.ReLU(), nn.Linear(8, 1, rng))
        opt = nn.Adam(model.parameters(), lr=0.02)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] * 2 - x[:, 1:] * 3 + 1)
        for _ in range(150):
            pred = model(Tensor(x))
            loss = nn.functional.mse_loss(pred, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.05


class TestGradientAscent:
    def test_ascends(self):
        p = nn.Parameter([0.0])
        opt = nn.GradientAscent([p], lr=0.1, floor=None)
        p.grad = np.array([2.0])
        opt.step()
        assert np.isclose(p.data[0], 0.2)

    def test_can_go_negative_without_floor(self):
        p = nn.Parameter([0.0])
        opt = nn.GradientAscent([p], lr=0.1, floor=None)
        p.grad = np.array([-5.0])
        opt.step()
        assert p.data[0] < 0

    def test_floor_clamps(self):
        p = nn.Parameter([0.0])
        opt = nn.GradientAscent([p], lr=0.1, floor=0.0)
        p.grad = np.array([-5.0])
        opt.step()
        assert p.data[0] == 0.0

    def test_maximises_concave(self):
        # maximise f(p) = -(p-3)^2 by ascent on its gradient
        p = nn.Parameter([0.0])
        opt = nn.GradientAscent([p], lr=0.1, floor=None)
        for _ in range(200):
            loss = -((p - 3.0) * (p - 3.0)).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(p.data[0] - 3.0) < 1e-3


class TestCosineSchedule:
    def test_endpoints(self):
        sched = nn.CosineSchedule(1.0, total_steps=100)
        assert np.isclose(sched.lr_at(0), 1.0)
        assert np.isclose(sched.lr_at(100), 0.0, atol=1e-12)

    def test_midpoint(self):
        sched = nn.CosineSchedule(1.0, total_steps=100)
        assert np.isclose(sched.lr_at(50), 0.5)

    def test_monotone_decreasing_after_warmup(self):
        sched = nn.CosineSchedule(1.0, total_steps=50, warmup_steps=5)
        lrs = [sched.lr_at(s) for s in range(5, 51)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_warmup_linear(self):
        sched = nn.CosineSchedule(0.5, total_steps=100, warmup_steps=5,
                                  warmup_start_lr=0.1)
        assert np.isclose(sched.lr_at(0), 0.1)
        assert sched.lr_at(3) < 0.5
        assert np.isclose(sched.lr_at(5), 0.5)

    def test_final_lr(self):
        sched = nn.CosineSchedule(1.0, total_steps=10, final_lr=0.2)
        assert np.isclose(sched.lr_at(10), 0.2)

    def test_clamps_out_of_range_steps(self):
        sched = nn.CosineSchedule(1.0, total_steps=10)
        assert sched.lr_at(-5) == sched.lr_at(0)
        assert sched.lr_at(99) == sched.lr_at(10)

    def test_apply_sets_optimizer(self):
        p = nn.Parameter([1.0])
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineSchedule(1.0, total_steps=10)
        lr = sched.apply(opt, 5)
        assert opt.lr == lr

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            nn.CosineSchedule(1.0, total_steps=0)
        with pytest.raises(ValueError):
            nn.CosineSchedule(1.0, total_steps=5, warmup_steps=5)
