"""Finite-difference gradient checks for every differentiable op.

Central differences with h = 1e-6 on float64 give ~1e-9 truncation error;
we assert agreement to 1e-5 relative / 1e-7 absolute everywhere.
"""

import numpy as np
import pytest

from repro.nn import Tensor, ops
from repro.nn import functional as F


def numeric_grad(fn, x: np.ndarray, h: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + h
        hi = fn(x)
        flat[i] = orig - h
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * h)
    return grad


def check(op_fn, *shapes, wrt=0, seed=0, positive=False):
    """Gradient-check op_fn(*tensors).sum() against finite differences."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=s) for s in shapes]
    if positive:
        arrays = [np.abs(a) + 0.5 for a in arrays]

    def scalar(x):
        inputs = [a.copy() for a in arrays]
        inputs[wrt] = x
        tensors = [Tensor(a) for a in inputs]
        return float(op_fn(*tensors).sum().data)

    tensors = [Tensor(a, requires_grad=(i == wrt)) for i, a in enumerate(arrays)]
    out = op_fn(*tensors).sum()
    out.backward()
    analytic = tensors[wrt].grad
    numeric = numeric_grad(scalar, arrays[wrt].copy())
    assert np.allclose(analytic, numeric, rtol=1e-5, atol=1e-7), (
        f"max err {np.abs(analytic - numeric).max():.2e}"
    )


class TestElementwise:
    def test_add(self):
        check(ops.add, (3, 4), (3, 4))

    def test_add_broadcast_rhs(self):
        check(ops.add, (3, 4), (4,), wrt=1)

    def test_sub_lhs(self):
        check(ops.sub, (3, 4), (3, 4), wrt=0)

    def test_sub_rhs(self):
        check(ops.sub, (3, 4), (3, 4), wrt=1)

    def test_mul(self):
        check(ops.mul, (5,), (5,))

    def test_mul_broadcast(self):
        check(ops.mul, (2, 3), (1, 3), wrt=1)

    def test_div_numerator(self):
        check(ops.div, (4,), (4,), wrt=0, positive=True)

    def test_div_denominator(self):
        check(ops.div, (4,), (4,), wrt=1, positive=True)

    def test_neg(self):
        check(ops.neg, (3, 3))

    def test_pow(self):
        check(lambda t: ops.pow_(t, 3.0), (4,), positive=True)

    def test_exp(self):
        check(ops.exp, (3, 3))

    def test_log(self):
        check(ops.log, (5,), positive=True)

    def test_sqrt(self):
        check(ops.sqrt, (5,), positive=True)

    def test_sigmoid(self):
        check(ops.sigmoid, (4, 4))

    def test_tanh(self):
        check(ops.tanh, (4, 4))

    def test_relu(self):
        check(ops.relu, (50,), seed=3)

    def test_clip(self):
        check(lambda t: ops.clip(t, -0.5, 0.5), (50,), seed=4)

    def test_relu6(self):
        check(ops.relu6, (20,), seed=5)

    def test_maximum_first(self):
        check(ops.maximum, (20,), (20,), wrt=0, seed=6)

    def test_maximum_second(self):
        check(ops.maximum, (20,), (20,), wrt=1, seed=6)


class TestLinalgReduce:
    def test_matmul_2d_lhs(self):
        check(ops.matmul, (3, 4), (4, 5), wrt=0)

    def test_matmul_2d_rhs(self):
        check(ops.matmul, (3, 4), (4, 5), wrt=1)

    def test_matmul_vec_rhs(self):
        check(ops.matmul, (3, 4), (4,), wrt=1)

    def test_matmul_vec_lhs(self):
        check(ops.matmul, (4,), (4, 5), wrt=0)

    def test_inner_product(self):
        check(ops.matmul, (6,), (6,), wrt=0)

    def test_sum_all(self):
        check(lambda t: ops.sum_(t), (3, 4))

    def test_sum_axis0(self):
        check(lambda t: ops.sum_(t, axis=0), (3, 4))

    def test_sum_axis1_keepdims(self):
        check(lambda t: ops.sum_(t, axis=1, keepdims=True), (3, 4))

    def test_sum_negative_axis(self):
        check(lambda t: ops.sum_(t, axis=-1), (3, 4))

    def test_sum_axes_tuple(self):
        check(lambda t: ops.sum_(t, axis=(0, 2)), (2, 3, 4))

    def test_mean_all(self):
        check(lambda t: ops.mean(t), (3, 4))

    def test_mean_axis(self):
        check(lambda t: ops.mean(t, axis=(2, 3)), (2, 3, 2, 2))


class TestShape:
    def test_reshape(self):
        check(lambda t: ops.reshape(t, (6,)) * Tensor(np.arange(6.0)), (2, 3))

    def test_transpose_default(self):
        check(lambda t: ops.transpose(t) * Tensor(np.ones((4, 3))), (3, 4))

    def test_transpose_axes(self):
        check(
            lambda t: ops.transpose(t, (2, 0, 1)) * Tensor(np.ones((4, 2, 3))),
            (2, 3, 4),
        )

    def test_getitem_row(self):
        check(lambda t: t[1], (3, 4))

    def test_getitem_scalar_entry(self):
        check(lambda t: t[1, 2], (3, 4))

    def test_concat(self):
        check(lambda a, b: ops.concat([a, b], axis=0), (2, 3), (4, 3), wrt=1)

    def test_concat_axis1(self):
        check(lambda a, b: ops.concat([a, b], axis=1), (2, 3), (2, 5), wrt=0)

    def test_stack(self):
        check(lambda a, b: ops.stack([a, b], axis=0), (3,), (3,), wrt=0)

    def test_pad2d(self):
        check(lambda t: ops.pad2d(t, 2), (1, 2, 3, 3))

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert ops.pad2d(x, 0) is x


class TestConv:
    def test_conv_wrt_input(self):
        w = np.random.default_rng(1).normal(size=(2, 3, 3, 3))
        check(lambda x: ops.conv2d(x, Tensor(w), padding=1), (2, 3, 5, 5))

    def test_conv_wrt_weight(self):
        check(
            lambda x, w: ops.conv2d(x, w, padding=1),
            (1, 2, 5, 5), (3, 2, 3, 3), wrt=1,
        )

    def test_conv_wrt_bias(self):
        check(
            lambda x, w, b: ops.conv2d(x, w, b),
            (1, 2, 4, 4), (3, 2, 3, 3), (3,), wrt=2,
        )

    def test_conv_stride2_input(self):
        check(
            lambda x, w: ops.conv2d(x, w, stride=2, padding=1),
            (1, 2, 6, 6), (4, 2, 3, 3), wrt=0,
        )

    def test_conv_stride2_weight(self):
        check(
            lambda x, w: ops.conv2d(x, w, stride=2, padding=2),
            (1, 2, 8, 8), (4, 2, 5, 5), wrt=1,
        )

    def test_depthwise_input(self):
        check(
            lambda x, w: ops.conv2d(x, w, padding=1, groups=4),
            (2, 4, 5, 5), (4, 1, 3, 3), wrt=0,
        )

    def test_depthwise_weight(self):
        check(
            lambda x, w: ops.conv2d(x, w, padding=1, groups=4),
            (2, 4, 5, 5), (4, 1, 3, 3), wrt=1,
        )

    def test_grouped_conv(self):
        check(
            lambda x, w: ops.conv2d(x, w, groups=2),
            (1, 4, 4, 4), (6, 2, 3, 3), wrt=1,
        )

    def test_conv_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 4, 4)))
        w = Tensor(np.zeros((2, 2, 3, 3)))
        with pytest.raises(ValueError):
            ops.conv2d(x, w)

    def test_conv_groups_divisibility_raises(self):
        x = Tensor(np.zeros((1, 4, 4, 4)))
        w = Tensor(np.zeros((3, 2, 3, 3)))
        with pytest.raises(ValueError):
            ops.conv2d(x, w, groups=2)

    def test_conv_matches_naive(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = ops.conv2d(Tensor(x), Tensor(w), padding=1).data
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((1, 3, 5, 5))
        for co in range(3):
            for i in range(5):
                for j in range(5):
                    naive[0, co, i, j] = (
                        padded[0, :, i : i + 3, j : j + 3] * w[co]
                    ).sum()
        assert np.allclose(out, naive)

    def test_avg_pool_global(self):
        check(ops.avg_pool_global, (2, 3, 4, 4))


class TestFunctionalGrad:
    def test_softmax(self):
        check(lambda t: F.softmax(t) * Tensor(np.arange(12.0).reshape(3, 4)), (3, 4))

    def test_log_softmax(self):
        check(
            lambda t: F.log_softmax(t) * Tensor(np.arange(12.0).reshape(3, 4)),
            (3, 4),
        )

    def test_cross_entropy(self):
        labels = np.array([0, 2, 1])
        check(lambda t: F.cross_entropy(t, labels), (3, 4))

    def test_mse(self):
        target = np.random.default_rng(0).normal(size=(5,))
        check(lambda t: F.mse_loss(t, target), (5,))

    def test_l1(self):
        target = np.random.default_rng(0).normal(size=(5,))
        check(lambda t: F.l1_loss(t, target), (5,), seed=9)

    def test_gumbel_softmax_fixed_noise(self):
        noise = np.random.default_rng(1).gumbel(size=(3, 4))
        check(
            lambda t: F.gumbel_softmax(t, tau=0.7, noise=noise)
            * Tensor(np.arange(12.0).reshape(3, 4)),
            (3, 4),
        )

    def test_dropout_mask(self):
        mask = (np.random.default_rng(2).uniform(size=(4, 4)) < 0.5).astype(float)
        check(lambda t: ops.dropout_mask(t, mask, 2.0), (4, 4))
