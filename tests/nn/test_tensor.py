"""Tests of the autodiff tape machinery in repro.nn.tensor."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, no_grad
from repro.nn.tensor import _unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_from_scalar(self):
        assert Tensor(2.5).item() == 2.5

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_requires_grad_default_off(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_rejects_multi_element(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_len_and_size_and_ndim(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestBackward:
    def test_scalar_chain(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 7
        y.backward()
        assert np.allclose(x.grad, 7.0)

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(2.0, requires_grad=True)
        (x * x).backward()
        (x * x).backward()
        assert np.allclose(x.grad, 8.0)

    def test_zero_grad(self):
        x = Tensor(2.0, requires_grad=True)
        (x * x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_sums_paths(self):
        # z = (x*2) + (x*3): dz/dx = 5
        x = Tensor(1.0, requires_grad=True)
        z = x * 2.0 + x * 3.0
        z.backward()
        assert np.allclose(x.grad, 5.0)

    def test_shared_subexpression(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x
        z = y + y  # dz/dx = 2 * 2x = 8
        z.backward()
        assert np.allclose(x.grad, 8.0)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_backward_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError):
            y.backward(np.ones(3))

    def test_explicit_grad_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert np.allclose(x.grad, 1.0)

    def test_non_grad_parent_receives_nothing(self):
        x = Tensor(1.0, requires_grad=True)
        c = Tensor(5.0)
        (x * c).backward()
        assert c.grad is None
        assert np.allclose(x.grad, 5.0)


class TestNoGrad:
    def test_no_grad_blocks_tape(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            pass
        assert (x * 2.0).requires_grad

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_detach_cuts_tape(self):
        x = Tensor(1.0, requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_clone_preserves_flag(self):
        x = Tensor([1.0], requires_grad=True)
        c = x.clone()
        assert c.requires_grad
        c.data[0] = 9.0
        assert x.data[0] == 1.0


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_prepended_axis(self):
        g = np.ones((4, 2, 3))
        out = _unbroadcast(g, (2, 3))
        assert out.shape == (2, 3)
        assert np.allclose(out, 4.0)

    def test_stretched_axis(self):
        g = np.ones((2, 3))
        out = _unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.allclose(out, 3.0)

    def test_scalar_target(self):
        g = np.ones((2, 3))
        out = _unbroadcast(g, ())
        assert out.shape == ()
        assert np.allclose(out, 6.0)

    def test_broadcast_gradients_through_add(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, 2.0)
