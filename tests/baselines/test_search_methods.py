"""Tests of evolution, RL, random-search and scaling baselines."""

import glob
import os

import numpy as np
import pytest

from repro.baselines.evolution import EvolutionConfig, EvolutionSearch
from repro.baselines.random_search import RandomSearch, RandomSearchConfig
from repro.baselines.rl_search import RLSearch, RLSearchConfig
from repro.baselines.scaling import ScalingBaseline
from repro.search_space.macro import MacroConfig


TINY_TARGET = 2.3  # inside the tiny-space latency band (~2.15–2.45 ms)


class TestEvolution:
    @pytest.fixture(scope="class")
    def result(self, tiny_space, tiny_predictor, tiny_oracle):
        cfg = EvolutionConfig(space=tiny_space, target=TINY_TARGET,
                              population_size=12, tournament_size=4,
                              cycles=60, seed=0)
        return EvolutionSearch(cfg, tiny_predictor, tiny_oracle).search()

    def test_respects_constraint(self, result, tiny_predictor):
        assert tiny_predictor.predict_arch(result.architecture) <= TINY_TARGET

    def test_architecture_valid(self, tiny_space, result):
        tiny_space.validate(result.architecture)

    def test_beats_random_feasible_average(self, tiny_space, tiny_predictor,
                                           tiny_oracle, result, rng):
        best = tiny_oracle.evaluate(result.architecture).top1
        feasible = [a for a in tiny_space.sample_many(200, rng)
                    if tiny_predictor.predict_arch(a) <= TINY_TARGET]
        mean_random = np.mean([tiny_oracle.evaluate(a).top1 for a in feasible])
        assert best > mean_random

    def test_config_validation(self, tiny_space):
        with pytest.raises(ValueError):
            EvolutionConfig(space=tiny_space, population_size=4,
                            tournament_size=8)
        with pytest.raises(ValueError):
            EvolutionConfig(space=tiny_space, population_size=1)

    def test_evaluation_count(self, result):
        assert result.num_search_steps >= 12  # at least the initial population

    def test_resume_parity(self, tmp_path, tiny_space, tiny_predictor,
                           tiny_oracle, result):
        def engine():
            cfg = EvolutionConfig(space=tiny_space, target=TINY_TARGET,
                                  population_size=12, tournament_size=4,
                                  cycles=60, seed=0)
            return EvolutionSearch(cfg, tiny_predictor, tiny_oracle)

        directory = str(tmp_path / "evo")
        engine().search(checkpoint_dir=directory, checkpoint_every=20)
        # drop the newest checkpoint so the resume replays the last 20 cycles
        os.remove(sorted(glob.glob(os.path.join(directory, "*.npz")))[-1])
        resumed = engine().search(resume_from=directory)
        assert resumed.summary() == result.summary()
        assert resumed.trajectory.predicted_metric == \
            result.trajectory.predicted_metric
        assert resumed.trajectory.architectures == \
            result.trajectory.architectures


class TestRL:
    @pytest.fixture(scope="class")
    def result(self, tiny_space, tiny_latency_model, tiny_oracle):
        cfg = RLSearchConfig(space=tiny_space, target=TINY_TARGET,
                             iterations=40, batch_archs=4, seed=0)
        return RLSearch(cfg, tiny_latency_model, tiny_oracle).search()

    def test_architecture_valid(self, tiny_space, result):
        tiny_space.validate(result.architecture)

    def test_latency_near_target(self, result, tiny_latency_model):
        lat = tiny_latency_model.latency_ms(result.architecture)
        assert lat <= TINY_TARGET * 1.15  # reward collapses far above target

    def test_reward_penalises_overrun(self, tiny_space, tiny_latency_model,
                                      tiny_oracle):
        cfg = RLSearchConfig(space=tiny_space, target=0.5, seed=0)
        engine = RLSearch(cfg, tiny_latency_model, tiny_oracle)
        arch = tiny_space.sample(np.random.default_rng(0))
        top1 = tiny_oracle.evaluate(arch, epochs=50).top1 / 100.0
        assert engine._reward(arch) < top1

    def test_reward_untouched_under_target(self, tiny_space, tiny_latency_model,
                                           tiny_oracle):
        cfg = RLSearchConfig(space=tiny_space, target=1e9, seed=0)
        engine = RLSearch(cfg, tiny_latency_model, tiny_oracle)
        arch = tiny_space.sample(np.random.default_rng(0))
        top1 = tiny_oracle.evaluate(arch, epochs=50).top1 / 100.0
        assert engine._reward(arch) == pytest.approx(top1)

    def test_counts_trained_samples(self, result):
        assert result.num_search_steps == 40 * 4

    def test_resume_parity(self, tmp_path, tiny_space, tiny_latency_model,
                           tiny_oracle, result):
        def engine():
            cfg = RLSearchConfig(space=tiny_space, target=TINY_TARGET,
                                 iterations=40, batch_archs=4, seed=0)
            return RLSearch(cfg, tiny_latency_model, tiny_oracle)

        directory = str(tmp_path / "rl")
        engine().search(checkpoint_dir=directory, checkpoint_every=10)
        # drop the newest checkpoint so the resume replays the last 10 rounds
        os.remove(sorted(glob.glob(os.path.join(directory, "*.npz")))[-1])
        resumed = engine().search(resume_from=directory)
        assert resumed.summary() == result.summary()
        assert resumed.trajectory.predicted_metric == \
            result.trajectory.predicted_metric
        assert resumed.trajectory.architectures == \
            result.trajectory.architectures


class TestRandomSearch:
    def test_best_feasible_returned(self, tiny_space, tiny_predictor,
                                    tiny_oracle):
        cfg = RandomSearchConfig(space=tiny_space, target=TINY_TARGET,
                                 num_samples=150, seed=0)
        result = RandomSearch(cfg, tiny_predictor, tiny_oracle).search()
        assert tiny_predictor.predict_arch(result.architecture) <= TINY_TARGET

    def test_raises_when_infeasible(self, tiny_space, tiny_predictor,
                                    tiny_oracle):
        cfg = RandomSearchConfig(space=tiny_space, target=0.0001,
                                 num_samples=20, seed=0)
        with pytest.raises(RuntimeError):
            RandomSearch(cfg, tiny_predictor, tiny_oracle).search()

    def test_more_samples_never_worse(self, tiny_space, tiny_predictor,
                                      tiny_oracle):
        def best(n):
            cfg = RandomSearchConfig(space=tiny_space, target=TINY_TARGET,
                                     num_samples=n, seed=7)
            res = RandomSearch(cfg, tiny_predictor, tiny_oracle).search()
            return tiny_oracle.evaluate(res.architecture, epochs=50).top1

        assert best(200) >= best(20)


class TestScaling:
    @pytest.fixture(scope="class")
    def baseline(self):
        return ScalingBaseline()

    def test_reference_is_width_one(self, baseline):
        ref = baseline.reference()
        assert ref.width_mult == 1.0
        assert ref.resolution == 224

    def test_width_fit_hits_target(self, baseline):
        model = baseline.fit_width_to_latency(24.0)
        assert abs(model.latency_ms - 24.0) < 0.5

    def test_width_curve_monotone_in_latency(self, baseline):
        curve = baseline.width_curve(multipliers=(0.5, 1.0, 1.4))
        lats = [m.latency_ms for m in curve]
        tops = [m.top1 for m in curve]
        assert lats == sorted(lats)
        assert tops == sorted(tops)

    def test_resolution_curve_monotone(self, baseline):
        curve = baseline.resolution_curve(resolutions=(128, 224))
        assert curve[0].latency_ms < curve[1].latency_ms
        assert curve[0].top1 < curve[1].top1

    def test_resolution_fit_respects_target(self, baseline):
        model = baseline.fit_resolution_to_latency(24.0)
        assert model.latency_ms <= 24.0
