"""Tests of the UNAS-style hybrid baseline."""

import numpy as np
import pytest

from repro.baselines.unas import UNASConfig, UNASSearch
from repro.search_space.space import Architecture


@pytest.fixture
def tiny_unas_cfg(tiny_space):
    return UNASConfig(space=tiny_space, epochs=10, steps_per_epoch=5,
                      latency_scale_ms=2.3, seed=0)


class TestUNAS:
    def test_architecture_valid(self, tiny_space, tiny_unas_cfg,
                                tiny_latency_model, tiny_oracle):
        result = UNASSearch(tiny_unas_cfg, tiny_latency_model,
                            tiny_oracle).search()
        tiny_space.validate(result.architecture)

    def test_lambda_controls_latency(self, tiny_space, tiny_latency_model,
                                     tiny_oracle):
        """Like every fixed-λ method: a heavier latency weight gives a
        faster network (the trade-off LightNAS automates away)."""
        latencies = []
        for lam in (0.0, 5.0):
            cfg = UNASConfig(space=tiny_space, epochs=18, steps_per_epoch=8,
                             latency_lambda=lam, latency_scale_ms=2.3, seed=1)
            result = UNASSearch(cfg, tiny_latency_model, tiny_oracle).search()
            latencies.append(tiny_latency_model.latency_ms(result.architecture))
        assert latencies[1] <= latencies[0]

    def test_policy_gradient_direction(self, full_space, full_latency_model,
                                       full_oracle):
        """The REINFORCE estimate must (in expectation) point toward cheaper
        operators: on the full space (where per-operator latency differences
        dominate measurement noise), the mean gradient on the most expensive
        candidate exceeds the mean gradient on skip."""
        cfg = UNASConfig(space=full_space, samples_per_step=150,
                         latency_scale_ms=24.0, seed=2)
        engine = UNASSearch(cfg, full_latency_model, full_oracle)
        probs = np.full((full_space.num_layers, full_space.num_operators),
                        1.0 / full_space.num_operators)
        grad, _ = engine._policy_gradient(probs, baseline=1.0)
        # ascending this gradient increases expected latency ⇒ the search
        # *subtracts* it scaled by λ; expensive k7e6 (index 5) must carry a
        # larger mean gradient than skip (index 6)
        assert grad[:, 5].mean() > grad[:, 6].mean()
        assert grad[:, 5].mean() > grad[:, 0].mean()  # and than k3e3

    def test_trajectory_and_counts(self, tiny_unas_cfg, tiny_latency_model,
                                   tiny_oracle):
        result = UNASSearch(tiny_unas_cfg, tiny_latency_model,
                            tiny_oracle).search()
        assert len(result.trajectory) == tiny_unas_cfg.epochs
        assert result.num_search_steps == (
            tiny_unas_cfg.epochs * tiny_unas_cfg.steps_per_epoch)
        assert result.final_lambda == tiny_unas_cfg.latency_lambda

    def test_accuracy_only_mode_prefers_capacity(self, tiny_space,
                                                 tiny_latency_model,
                                                 tiny_oracle):
        cfg = UNASConfig(space=tiny_space, epochs=20, steps_per_epoch=8,
                         latency_lambda=0.0, latency_scale_ms=2.3, seed=3)
        result = UNASSearch(cfg, tiny_latency_model, tiny_oracle).search()
        assert result.architecture.depth(tiny_space.skip_index) == \
            tiny_space.num_layers
