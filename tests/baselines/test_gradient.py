"""Tests of the gradient-based baselines (DARTS/SNAS/FBNet/Proxyless)."""

import numpy as np
import pytest

from repro import nn
from repro.baselines.gradient import (
    DARTSSearch,
    FBNetSearch,
    GradientNASConfig,
    ProxylessSearch,
    SNASSearch,
)
from repro.proxy.accuracy_model import AccuracyOracle


@pytest.fixture
def tiny_cfg(tiny_space):
    return GradientNASConfig(space=tiny_space, epochs=8, steps_per_epoch=4, seed=0)


class TestDARTS:
    def test_multi_path_complexity(self, tiny_space, tiny_cfg, tiny_oracle):
        result = DARTSSearch(tiny_cfg, tiny_oracle).search()
        assert result.search_paths_per_step == (
            tiny_space.num_layers * tiny_space.num_operators)

    def test_relaxation_is_softmax(self, tiny_space, tiny_cfg, tiny_oracle):
        engine = DARTSSearch(tiny_cfg, tiny_oracle)
        alpha = nn.Tensor(np.random.default_rng(0).normal(
            size=(tiny_space.num_layers, tiny_space.num_operators)))
        weights = engine.relax(alpha, 0).data
        assert np.allclose(weights.sum(axis=-1), 1.0)
        # deterministic: same α gives same weights
        assert np.allclose(weights, engine.relax(alpha, 0).data)

    def test_accuracy_only_prefers_capacity(self, tiny_space, tiny_oracle):
        cfg = GradientNASConfig(space=tiny_space, epochs=25, steps_per_epoch=8,
                                seed=0)
        result = DARTSSearch(cfg, tiny_oracle).search()
        # with no latency term, DARTS should end with zero skip layers
        assert result.architecture.depth(tiny_space.skip_index) == \
            tiny_space.num_layers

    def test_metric_name_none(self, tiny_cfg, tiny_oracle):
        assert DARTSSearch(tiny_cfg, tiny_oracle).search().metric_name == "none"


class TestSNAS:
    def test_stochastic_relaxation(self, tiny_space, tiny_cfg, tiny_oracle):
        engine = SNASSearch(tiny_cfg, tiny_oracle)
        alpha = nn.Tensor(np.zeros((tiny_space.num_layers,
                                    tiny_space.num_operators)))
        w1 = engine.relax(alpha, 0).data
        w2 = engine.relax(alpha, 0).data
        assert not np.allclose(w1, w2)  # Gumbel noise differs per call
        assert np.allclose(w1.sum(axis=-1), 1.0)

    def test_multi_path(self, tiny_space, tiny_cfg, tiny_oracle):
        result = SNASSearch(tiny_cfg, tiny_oracle).search()
        assert result.search_paths_per_step == (
            tiny_space.num_layers * tiny_space.num_operators)


class TestFBNet:
    def test_needs_predictor_when_lambda_positive(self, tiny_space, tiny_oracle):
        cfg = GradientNASConfig(space=tiny_space, latency_lambda=0.1)
        with pytest.raises(ValueError):
            FBNetSearch(cfg, tiny_oracle, predictor=None)

    def test_lambda_zero_runs_without_predictor(self, tiny_cfg, tiny_oracle):
        result = FBNetSearch(tiny_cfg, tiny_oracle).search()
        assert result.final_lambda == 0.0

    def test_lambda_controls_latency_tradeoff(self, tiny_space, tiny_oracle,
                                              tiny_predictor, tiny_latency_model):
        """The Figure-3 mechanism: larger fixed λ ⇒ lower searched latency."""
        latencies = []
        for lam in (0.0, 3.0):
            cfg = GradientNASConfig(space=tiny_space, epochs=20,
                                    steps_per_epoch=8, latency_lambda=lam, seed=1)
            result = FBNetSearch(cfg, tiny_oracle, tiny_predictor).search()
            latencies.append(tiny_latency_model.latency_ms(result.architecture))
        assert latencies[1] <= latencies[0]

    def test_huge_lambda_collapses_to_skip(self, tiny_space, tiny_oracle,
                                           tiny_predictor):
        """The λ>threshold collapse of Figure 3: the latency term dominates
        and the search fills the network with SkipConnect."""
        cfg = GradientNASConfig(space=tiny_space, epochs=25, steps_per_epoch=8,
                                latency_lambda=100.0, seed=1)
        result = FBNetSearch(cfg, tiny_oracle, tiny_predictor).search()
        depth = result.architecture.depth(tiny_space.skip_index)
        assert depth < tiny_space.num_layers  # skips appeared

    def test_records_fixed_lambda(self, tiny_space, tiny_oracle, tiny_predictor):
        cfg = GradientNASConfig(space=tiny_space, epochs=3, steps_per_epoch=2,
                                latency_lambda=0.25, seed=0)
        result = FBNetSearch(cfg, tiny_oracle, tiny_predictor).search()
        assert result.final_lambda == 0.25


class TestProxyless:
    def test_two_path_complexity(self, tiny_space, tiny_cfg, tiny_oracle):
        result = ProxylessSearch(tiny_cfg, tiny_oracle).search()
        assert result.search_paths_per_step == 2 * tiny_space.num_layers

    def test_relaxation_activates_two_paths_per_layer(self, tiny_space, tiny_cfg,
                                                      tiny_oracle):
        engine = ProxylessSearch(tiny_cfg, tiny_oracle)
        alpha = nn.Tensor(np.zeros((tiny_space.num_layers,
                                    tiny_space.num_operators)))
        weights = engine.relax(alpha, 0).data
        assert ((weights > 0).sum(axis=-1) == 2).all()
        assert np.allclose(weights.sum(axis=-1), 1.0)


class TestCommon:
    def test_trajectory_recorded_per_epoch(self, tiny_cfg, tiny_oracle):
        result = DARTSSearch(tiny_cfg, tiny_oracle).search()
        assert len(result.trajectory) == tiny_cfg.epochs

    def test_architecture_valid(self, tiny_space, tiny_cfg, tiny_oracle):
        for cls in (DARTSSearch, SNASSearch, ProxylessSearch):
            result = cls(tiny_cfg, tiny_oracle).search()
            tiny_space.validate(result.architecture)

    def test_step_count(self, tiny_cfg, tiny_oracle):
        result = DARTSSearch(tiny_cfg, tiny_oracle).search()
        assert result.num_search_steps == tiny_cfg.epochs * tiny_cfg.steps_per_epoch
