"""Tests of the cell-based (tiled) search space and constrained cell search."""

import numpy as np
import pytest

from repro import nn
from repro.search_space.cell import CellConstrainedSearch, CellSearchConfig, CellSpace
from repro.search_space.space import Architecture


class TestCellSpace:
    def test_size_much_smaller_than_layerwise(self, full_space):
        cell = CellSpace(full_space, cell_size=4)
        assert cell.size == 7.0 ** 4
        assert cell.size < full_space.size

    def test_expand_tiles_cyclically(self, full_space):
        cell = CellSpace(full_space, cell_size=3)
        arch = cell.expand((0, 1, 2))
        assert arch.op_indices[:6] == (0, 1, 2, 0, 1, 2)
        assert len(arch) == full_space.num_layers

    def test_expand_validates_length(self, full_space):
        with pytest.raises(ValueError):
            CellSpace(full_space, cell_size=3).expand((0, 1))

    def test_invalid_cell_size(self, full_space):
        with pytest.raises(ValueError):
            CellSpace(full_space, cell_size=0)
        with pytest.raises(ValueError):
            CellSpace(full_space, cell_size=99)

    def test_cell_size_one_is_uniform(self, full_space):
        cell = CellSpace(full_space, cell_size=1)
        arch = cell.expand((5,))
        assert arch == Architecture((5,) * full_space.num_layers)

    def test_sample_valid(self, full_space, rng):
        cell = CellSpace(full_space, cell_size=4)
        full_space.validate(cell.sample(rng))

    def test_expand_gates_matches_discrete(self, full_space):
        cell = CellSpace(full_space, cell_size=4)
        choices = (0, 3, 6, 1)
        one_hot = np.zeros((4, full_space.num_operators))
        one_hot[np.arange(4), list(choices)] = 1.0
        expanded = cell.expand_gates(nn.Tensor(one_hot)).data
        expected = cell.expand(choices).one_hot(full_space.num_operators)
        assert np.array_equal(expanded, expected)

    def test_expand_gates_differentiable(self, full_space):
        cell = CellSpace(full_space, cell_size=4)
        gates = nn.Tensor(np.full((4, 7), 1.0 / 7), requires_grad=True)
        out = cell.expand_gates(gates)
        out.sum().backward()
        # each cell position feeds ⌈L/C⌉ or ⌊L/C⌋ layers
        assert gates.grad is not None
        row_sums = gates.grad.sum(axis=1)
        assert row_sums.sum() == pytest.approx(full_space.num_layers * 7)

    def test_expand_gates_shape_check(self, full_space):
        cell = CellSpace(full_space, cell_size=4)
        with pytest.raises(ValueError):
            cell.expand_gates(nn.Tensor(np.zeros((3, 7))))


class TestCellSearch:
    def test_hits_target_within_cell_expressiveness(self, full_space,
                                                    full_predictor,
                                                    full_oracle,
                                                    full_latency_model):
        config = CellSearchConfig(cell_size=4, target=24.0, epochs=50,
                                  steps_per_epoch=30, seed=0)
        search = CellConstrainedSearch(full_space, config, full_predictor,
                                       full_oracle)
        arch, predicted = search.search()
        full_space.validate(arch)
        # the tiled space is coarse, so the band is wider than layer-wise
        assert abs(full_latency_model.latency_ms(arch) - 24.0) < 3.0

    def test_result_is_a_tiling(self, full_space, full_predictor, full_oracle):
        config = CellSearchConfig(cell_size=4, target=24.0, epochs=25,
                                  steps_per_epoch=15, seed=1)
        arch, _ = CellConstrainedSearch(full_space, config, full_predictor,
                                        full_oracle).search()
        ops = arch.op_indices
        for layer, op in enumerate(ops):
            assert op == ops[layer % 4]

    def test_layerwise_beats_cell_at_matched_latency(
            self, full_space, full_predictor, full_oracle, full_latency_model):
        """§3.1's argument, executed: layer diversity wins."""
        from repro.core.lightnas import LightNAS, LightNASConfig

        target = 24.0
        cell_config = CellSearchConfig(cell_size=4, target=target, epochs=50,
                                       steps_per_epoch=30, seed=0)
        cell_arch, _ = CellConstrainedSearch(
            full_space, cell_config, full_predictor, full_oracle).search()
        cell_latency = full_latency_model.latency_ms(cell_arch)

        # search layer-wise at the latency the cell actually achieved
        config = LightNASConfig.paper(cell_latency, space=full_space, seed=0,
                                      epochs=50, steps_per_epoch=30)
        layer_result = LightNAS(config, predictor=full_predictor).search()

        cell_top1 = full_oracle.evaluate(cell_arch).top1
        layer_top1 = full_oracle.evaluate(layer_result.architecture).top1
        assert layer_top1 > cell_top1
