"""Tests of Architecture encoding and the SearchSpace container."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search_space.macro import MacroConfig
from repro.search_space.space import Architecture, SearchSpace


class TestArchitecture:
    def test_len(self):
        assert len(Architecture((0, 1, 2))) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Architecture(())

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Architecture((0, -1))

    def test_one_hot_shape(self):
        oh = Architecture((0, 3, 6)).one_hot(7)
        assert oh.shape == (3, 7)
        assert np.allclose(oh.sum(axis=1), 1.0)

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            Architecture((0, 8)).one_hot(7)

    def test_from_one_hot_round_trip(self):
        arch = Architecture((2, 0, 5, 6))
        assert Architecture.from_one_hot(arch.one_hot(7)) == arch

    def test_from_one_hot_rejects_soft(self):
        with pytest.raises(ValueError):
            Architecture.from_one_hot(np.full((2, 3), 1 / 3))

    def test_from_one_hot_rejects_multi_hot(self):
        matrix = np.zeros((2, 3))
        matrix[0, 0] = matrix[0, 1] = 1.0
        matrix[1, 0] = 1.0
        with pytest.raises(ValueError):
            Architecture.from_one_hot(matrix)

    def test_from_alpha_argmax(self):
        alpha = np.array([[0.1, 2.0, 0.0], [5.0, 1.0, 1.0]])
        assert Architecture.from_alpha(alpha).op_indices == (1, 0)

    def test_from_alpha_rejects_1d(self):
        with pytest.raises(ValueError):
            Architecture.from_alpha(np.zeros(5))

    def test_json_round_trip(self):
        arch = Architecture((1, 2, 3))
        assert Architecture.from_json(arch.to_json()) == arch
        payload = json.loads(arch.to_json())
        assert payload["op_indices"] == [1, 2, 3]

    def test_depth_counts_non_skip(self):
        arch = Architecture((6, 0, 6, 1))
        assert arch.depth(skip_index=6) == 2

    def test_mutate_changes_exactly_one_layer(self):
        arch = Architecture((0,) * 10)
        mutant = arch.mutate(np.random.default_rng(0), 7)
        diffs = sum(a != b for a, b in zip(arch.op_indices, mutant.op_indices))
        assert diffs == 1

    def test_mutate_never_keeps_same_op(self):
        rng = np.random.default_rng(1)
        arch = Architecture((3, 3, 3))
        for _ in range(20):
            mutant = arch.mutate(rng, 7)
            layer = [i for i in range(3)
                     if mutant.op_indices[i] != arch.op_indices[i]]
            assert len(layer) == 1

    def test_hashable_equality(self):
        assert Architecture((1, 2)) == Architecture((1, 2))
        assert len({Architecture((1, 2)), Architecture((1, 2))}) == 1


class TestSearchSpace:
    def test_paper_dimensions(self, full_space):
        assert full_space.num_layers == 21
        assert full_space.num_operators == 7
        assert np.isclose(full_space.size, 7.0 ** 21)
        # |A| ≈ 5.6e17 as stated in §3.1
        assert 5.5e17 < full_space.size < 5.7e17

    def test_skip_index(self, full_space):
        assert full_space.operators[full_space.skip_index].is_skip

    def test_sample_valid(self, full_space, rng):
        arch = full_space.sample(rng)
        full_space.validate(arch)
        assert len(arch) == 21

    def test_sample_many_count(self, full_space, rng):
        archs = full_space.sample_many(50, rng)
        assert len(archs) == 50

    def test_sample_many_unique(self, full_space, rng):
        archs = full_space.sample_many(100, rng, unique=True)
        assert len({a.op_indices for a in archs}) == 100

    def test_sample_unique_exhaustion_raises(self, rng):
        space = SearchSpace(MacroConfig.tiny(num_searchable_layers=2))
        with pytest.raises(ValueError):
            space.sample_many(space.num_operators ** 2 + 1, rng, unique=True)

    def test_validate_wrong_length(self, full_space):
        with pytest.raises(ValueError):
            full_space.validate(Architecture((0, 1)))

    def test_validate_unknown_operator(self, full_space):
        with pytest.raises(ValueError):
            full_space.validate(Architecture((9,) * 21))

    def test_describe(self, full_space):
        names = full_space.describe(Architecture((0,) * 20 + (6,)))
        assert names[0] == "mbconv_k3_e3"
        assert names[-1] == "skip"

    def test_uniform_alpha_shape(self, full_space):
        alpha = full_space.uniform_alpha()
        assert alpha.shape == (21, 7)
        assert np.all(alpha == 0)

    def test_layer_geometries_copies(self, full_space):
        geoms = full_space.layer_geometries()
        geoms.pop()
        assert len(full_space.layer_geometries()) == 21


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=21))
def test_one_hot_round_trip_property(indices):
    arch = Architecture(tuple(indices))
    assert Architecture.from_one_hot(arch.one_hot(7)) == arch


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=21))
def test_json_round_trip_property(indices):
    arch = Architecture(tuple(indices))
    assert Architecture.from_json(arch.to_json()) == arch


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_sampling_always_valid_property(seed):
    space = SearchSpace(MacroConfig.tiny())
    arch = space.sample(np.random.default_rng(seed))
    space.validate(arch)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), min_size=4, max_size=4),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_mutation_stays_in_space_property(indices, seed):
    space = SearchSpace(MacroConfig.tiny())
    arch = Architecture(tuple(indices))
    mutant = arch.mutate(np.random.default_rng(seed), space.num_operators)
    space.validate(mutant)
