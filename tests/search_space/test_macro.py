"""Tests of the macro-architecture stage layout."""

import pytest

from repro.search_space.macro import MacroConfig


class TestLightNASLayout:
    def test_21_searchable_layers(self):
        # L = 22 with the first fixed ⇒ 21 searchable (paper §3.1)
        assert MacroConfig.lightnas().num_searchable_layers == 21

    def test_strides_halve_resolution_to_7(self):
        macro = MacroConfig.lightnas()
        assert macro.final_resolution == 7  # 224 / 2 (stem) / 2^4 (stages)

    def test_layer_geometry_chain_consistent(self):
        layers = MacroConfig.lightnas().searchable_layers()
        for prev, cur in zip(layers, layers[1:]):
            assert cur.in_channels == prev.out_channels
            assert cur.in_resolution == prev.out_resolution

    def test_first_layer_enters_from_fixed_block(self):
        macro = MacroConfig.lightnas()
        first = macro.searchable_layers()[0]
        assert first.in_channels == macro.first_layer_channels
        assert first.in_resolution == macro.input_resolution // 2

    def test_stage_channel_progression(self):
        macro = MacroConfig.lightnas()
        outs = [layer.out_channels for layer in macro.searchable_layers()]
        assert outs[0] == 24 and outs[-1] == 352
        assert outs == sorted(outs)  # non-decreasing widths

    def test_one_stride2_per_reduction_stage(self):
        macro = MacroConfig.lightnas()
        strides = [l.stride for l in macro.searchable_layers()]
        assert strides.count(2) == 4  # stages with first_stride=2

    def test_resolutions_powers_structure(self):
        layers = MacroConfig.lightnas().searchable_layers()
        assert layers[0].in_resolution == 112
        assert layers[-1].out_resolution == 7


class TestTinyLayout:
    def test_default_four_layers(self):
        assert MacroConfig.tiny().num_searchable_layers == 4

    def test_configurable_depth(self):
        assert MacroConfig.tiny(num_searchable_layers=6).num_searchable_layers == 6

    def test_minimum_depth(self):
        with pytest.raises(ValueError):
            MacroConfig.tiny(num_searchable_layers=1)

    def test_geometry_chain_consistent(self):
        layers = MacroConfig.tiny().searchable_layers()
        for prev, cur in zip(layers, layers[1:]):
            assert cur.in_channels == prev.out_channels
            assert cur.in_resolution == prev.out_resolution


class TestScaling:
    def test_identity_scale(self):
        macro = MacroConfig.lightnas()
        scaled = macro.scaled(1.0)
        assert scaled.stages == macro.stages
        assert scaled.input_resolution == macro.input_resolution

    def test_width_rounds_to_multiple_of_8(self):
        scaled = MacroConfig.lightnas().scaled(0.77)
        for ch, _, _ in scaled.stages:
            assert ch % 8 == 0

    def test_width_monotone(self):
        base = MacroConfig.lightnas()
        up = base.scaled(1.5)
        down = base.scaled(0.5)
        for (b, _, _), (u, _, _), (d, _, _) in zip(base.stages, up.stages, down.stages):
            assert d <= b <= u

    def test_resolution_override(self):
        scaled = MacroConfig.lightnas().scaled(1.0, resolution=160)
        assert scaled.input_resolution == 160

    def test_layer_count_preserved(self):
        assert (MacroConfig.lightnas().scaled(0.6).num_searchable_layers
                == MacroConfig.lightnas().num_searchable_layers)

    def test_minimum_width_floor(self):
        scaled = MacroConfig.lightnas().scaled(0.01)
        assert all(ch >= 8 for ch, _, _ in scaled.stages)


class TestLayerGeometry:
    def test_out_resolution(self):
        layer = MacroConfig.lightnas().searchable_layers()[0]
        assert layer.out_resolution == layer.in_resolution // layer.stride
