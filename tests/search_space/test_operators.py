"""Tests of the operator vocabulary and block construction."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.search_space.operators import (
    LIGHTNAS_OPERATORS,
    SKIP_INDEX,
    MBConv,
    OperatorSpec,
    SkipConnect,
    build_operator,
)


class TestVocabulary:
    def test_seven_candidates(self):
        assert len(LIGHTNAS_OPERATORS) == 7

    def test_kernel_expansion_grid(self):
        combos = {(op.kernel_size, op.expansion)
                  for op in LIGHTNAS_OPERATORS if not op.is_skip}
        assert combos == {(3, 3), (3, 6), (5, 3), (5, 6), (7, 3), (7, 6)}

    def test_exactly_one_skip(self):
        skips = [i for i, op in enumerate(LIGHTNAS_OPERATORS) if op.is_skip]
        assert skips == [SKIP_INDEX]

    def test_names_unique(self):
        names = [op.name for op in LIGHTNAS_OPERATORS]
        assert len(set(names)) == len(names)

    def test_spec_str(self):
        assert str(LIGHTNAS_OPERATORS[0]) == "mbconv_k3_e3"

    def test_spec_hashable_frozen(self):
        spec = LIGHTNAS_OPERATORS[0]
        assert spec in {spec}
        with pytest.raises(Exception):
            spec.kernel_size = 5


class TestMBConv:
    def test_output_shape_stride1(self):
        block = MBConv(8, 8, 3, 3, 1, np.random.default_rng(0))
        assert block(Tensor(np.zeros((2, 8, 6, 6)))).shape == (2, 8, 6, 6)

    def test_output_shape_stride2_channel_change(self):
        block = MBConv(8, 16, 5, 6, 2, np.random.default_rng(0))
        assert block(Tensor(np.zeros((1, 8, 8, 8)))).shape == (1, 16, 4, 4)

    def test_residual_only_when_shape_preserved(self):
        assert MBConv(8, 8, 3, 3, 1, np.random.default_rng(0)).use_residual
        assert not MBConv(8, 16, 3, 3, 1, np.random.default_rng(0)).use_residual
        assert not MBConv(8, 8, 3, 3, 2, np.random.default_rng(0)).use_residual

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            MBConv(8, 8, 3, 3, 3, np.random.default_rng(0))

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            MBConv(8, 8, 4, 3, 1, np.random.default_rng(0))

    def test_with_se_adds_parameters(self):
        rng = np.random.default_rng(0)
        plain = MBConv(8, 8, 3, 3, 1, rng)
        with_se = MBConv(8, 8, 3, 3, 1, np.random.default_rng(0), with_se=True)
        assert with_se.num_parameters() > plain.num_parameters()

    def test_gradient_reaches_all_parameters(self):
        block = MBConv(4, 4, 3, 3, 1, np.random.default_rng(1))
        out = block(Tensor(np.random.default_rng(2).normal(size=(2, 4, 5, 5))))
        out.sum().backward()
        assert all(p.grad is not None for p in block.parameters())


class TestSkipConnect:
    def test_identity_case(self):
        skip = SkipConnect(8, 8, 1, np.random.default_rng(0))
        assert skip.is_identity
        x = Tensor(np.random.default_rng(1).normal(size=(1, 8, 4, 4)))
        assert skip(x) is x

    def test_identity_has_no_parameters(self):
        skip = SkipConnect(8, 8, 1, np.random.default_rng(0))
        assert skip.num_parameters() == 0

    def test_projection_on_stride(self):
        skip = SkipConnect(8, 8, 2, np.random.default_rng(0))
        assert not skip.is_identity
        assert skip(Tensor(np.zeros((1, 8, 6, 6)))).shape == (1, 8, 3, 3)

    def test_projection_on_channel_change(self):
        skip = SkipConnect(8, 16, 1, np.random.default_rng(0))
        assert skip(Tensor(np.zeros((1, 8, 4, 4)))).shape == (1, 16, 4, 4)


class TestBuildOperator:
    def test_builds_mbconv(self):
        op = build_operator(LIGHTNAS_OPERATORS[0], 8, 8, 1, np.random.default_rng(0))
        assert isinstance(op, MBConv)

    def test_builds_skip(self):
        op = build_operator(LIGHTNAS_OPERATORS[SKIP_INDEX], 8, 8, 1,
                            np.random.default_rng(0))
        assert isinstance(op, SkipConnect)

    @pytest.mark.parametrize("k", range(len(LIGHTNAS_OPERATORS)))
    def test_all_candidates_type_check(self, k):
        op = build_operator(LIGHTNAS_OPERATORS[k], 8, 16, 2, np.random.default_rng(0))
        out = op(Tensor(np.zeros((1, 8, 8, 8))))
        assert out.shape == (1, 16, 4, 4)
